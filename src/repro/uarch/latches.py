"""Bit-level model of the pipeline's hardware latches.

EMSim's activity-factor regression (Eq. 8) runs over "a vector of transition
bits across all the existing registers in the targeted pipeline stage".  This
module fixes the register schema of each stage — names and bit widths — and
tracks the latch values cycle by cycle so transition vectors can be derived.

The schema below corresponds to a textbook 5-stage implementation of the
paper's core: fetch PC/instruction word, decode operand/immediate latches,
execute ALU input/output and multiply unit registers, memory address/data
buses, and the writeback port.

The production :class:`HardwareLatches` stores the whole pipeline's latch
state in one flat ``uint64`` vector, with every per-register index, width
mask, and bubble pattern precomputed at import time — a latch write is a
table lookup plus one array store, and the columnar activity trace snapshots
the entire pipeline with a single row copy.  The seed's dict-backed
implementation survives as :class:`LegacyHardwareLatches`, the reference
oracle for the legacy recording path.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..isa.instructions import NOP, Instruction

STAGES: Tuple[str, ...] = ("F", "D", "E", "M", "W")
"""Pipeline stage labels: Fetch, Decode, Execute, Memory, Writeback."""

STAGE_REGISTERS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "F": (("pc", 32), ("fetch_instr", 32), ("pred_state", 4)),
    "D": (("dec_instr", 32), ("rs1_val", 32), ("rs2_val", 32),
          ("dec_imm", 32), ("dec_ctrl", 12)),
    "E": (("alu_a", 32), ("alu_b", 32), ("alu_out", 32),
          ("muldiv_lo", 32), ("muldiv_hi", 32), ("ex_ctrl", 8)),
    "M": (("mem_addr", 32), ("mem_wdata", 32), ("mem_rdata", 32),
          ("mem_ctrl", 8)),
    "W": (("wb_data", 32), ("wb_rd", 5), ("wb_ctrl", 2)),
}
"""Per-stage latch schema: ordered (name, bit width) pairs."""


def stage_bit_count(stage: str) -> int:
    """Total latch bits tracked for ``stage``."""
    return sum(width for _, width in STAGE_REGISTERS[stage])


def stage_register_offsets(stage: str) -> Dict[str, Tuple[int, int]]:
    """Map register name -> (bit offset, width) inside the stage vector."""
    offsets = {}
    position = 0
    for name, width in STAGE_REGISTERS[stage]:
        offsets[name] = (position, width)
        position += width
    return offsets


TOTAL_BITS = sum(stage_bit_count(stage) for stage in STAGES)
"""Latch bits tracked across the whole pipeline."""

TOTAL_REGISTERS = sum(len(STAGE_REGISTERS[stage]) for stage in STAGES)
"""Registers tracked across the whole pipeline (columns of the flat
latch vector, in ``STAGES`` × schema order)."""


def _build_flat_tables():
    """Precompute the flat-vector layout tables once, at import time.

    Returns ``(stage_slices, register_index)`` where ``stage_slices``
    maps each stage to its column :class:`slice` of the flat latch
    vector and ``register_index`` maps each stage to a
    ``name -> (flat column, width mask)`` table.  These tables replace
    the per-write ``dict(STAGE_REGISTERS[stage])`` rebuild the seed
    implementation paid on every latch update.
    """
    stage_slices: Dict[str, slice] = {}
    register_index: Dict[str, Dict[str, Tuple[int, int]]] = {}
    column = 0
    for stage in STAGES:
        start = column
        table: Dict[str, Tuple[int, int]] = {}
        for name, width in STAGE_REGISTERS[stage]:
            table[name] = (column, (1 << width) - 1)
            column += 1
        stage_slices[stage] = slice(start, column)
        register_index[stage] = table
    return stage_slices, register_index


STAGE_SLICES, REGISTER_INDEX = _build_flat_tables()
"""Flat-vector layout: per-stage column slices and per-register
``name -> (column, mask)`` tables, fixed at import time."""


def control_word(instr: Instruction, bits: int) -> int:
    """Instruction-dependent control-signal pattern, ``bits`` wide.

    Derived from the static opcode fields so that different instruction
    kinds toggle different control wires, as decode logic would.  The
    pattern depends only on the mnemonic, so it is memoized per
    ``(mnemonic, bits)`` — the pipeline recomputes it for every latch
    write of every cycle.
    """
    cached = _CONTROL_WORDS.get((instr.name, bits))
    if cached is not None:
        return cached
    spec = instr.spec
    raw = spec.opcode | (spec.funct3 << 7) | (spec.funct7 << 10)
    raw ^= raw >> 7
    word = raw & ((1 << bits) - 1)
    _CONTROL_WORDS[(instr.name, bits)] = word
    return word


_CONTROL_WORDS: Dict[Tuple[str, int], int] = {}

NOP_CONTROL = control_word(NOP, 12)
"""Decode control pattern of the canonical NOP / pipeline bubble."""


def bubble_pattern(stage: str) -> Dict[str, int]:
    """Latch values representing a NOP bubble occupying ``stage``."""
    if stage == "F":
        return {"fetch_instr": NOP.encode(), "pred_state": 0}
    if stage == "D":
        return {"dec_instr": NOP.encode(), "rs1_val": 0, "rs2_val": 0,
                "dec_imm": 0, "dec_ctrl": NOP_CONTROL}
    if stage == "E":
        return {"alu_a": 0, "alu_b": 0, "alu_out": 0, "ex_ctrl": 0}
    if stage == "M":
        return {"mem_addr": 0, "mem_wdata": 0, "mem_ctrl": 0}
    if stage == "W":
        return {"wb_data": 0, "wb_rd": 0, "wb_ctrl": 0}
    raise ValueError(f"unknown stage {stage!r}")


def _build_bubble_tables():
    """Precompute per-stage (flat columns, values) bubble write pairs."""
    indices: Dict[str, np.ndarray] = {}
    values: Dict[str, np.ndarray] = {}
    for stage in STAGES:
        pattern = bubble_pattern(stage)
        table = REGISTER_INDEX[stage]
        columns = [table[name][0] for name in pattern]
        indices[stage] = np.asarray(columns, dtype=np.intp)
        values[stage] = np.asarray(list(pattern.values()), dtype=np.uint64)
    return indices, values


_BUBBLE_COLUMNS, _BUBBLE_VALUES = _build_bubble_tables()


def _column(stage: str, name: str) -> int:
    return REGISTER_INDEX[stage][name][0]


def _mask(stage: str, name: str) -> int:
    return REGISTER_INDEX[stage][name][1]


# Flat columns of the registers on the per-cycle fast path.  The
# specialized ``write_*`` methods below store through these constants
# positionally — no kwargs dict, no name lookup — because the pipeline
# hits them once per stage per cycle.
_C_PC = _column("F", "pc")
_C_FETCH_INSTR = _column("F", "fetch_instr")
_C_PRED_STATE = _column("F", "pred_state")
_C_DEC_INSTR = _column("D", "dec_instr")
_C_RS1_VAL = _column("D", "rs1_val")
_C_RS2_VAL = _column("D", "rs2_val")
_C_DEC_IMM = _column("D", "dec_imm")
_C_DEC_CTRL = _column("D", "dec_ctrl")
_C_ALU_A = _column("E", "alu_a")
_C_ALU_B = _column("E", "alu_b")
_C_ALU_OUT = _column("E", "alu_out")
_C_EX_CTRL = _column("E", "ex_ctrl")
_C_MEM_RDATA = _column("M", "mem_rdata")
_C_MEM_CTRL = _column("M", "mem_ctrl")
_C_WB_DATA = _column("W", "wb_data")
_C_WB_RD = _column("W", "wb_rd")
_C_WB_CTRL = _column("W", "wb_ctrl")

_M32 = 0xFFFFFFFF
_M_PRED_STATE = _mask("F", "pred_state")
_M_DEC_CTRL = _mask("D", "dec_ctrl")
_M_EX_CTRL = _mask("E", "ex_ctrl")
_M_MEM_CTRL = _mask("M", "mem_ctrl")
_M_WB_RD = _mask("W", "wb_rd")
_M_WB_CTRL = _mask("W", "wb_ctrl")


class HardwareLatches:
    """Current value of every tracked latch, with per-stage update guards.

    The pipeline calls :meth:`write` for stages that do real work in a
    cycle; stalled stages are simply not written, so their latches hold
    their values and contribute no transitions — exactly the physical
    behaviour the paper attributes to stalls ("due to this preservation no
    bit-flips occur in the stalled stages", §IV).

    State lives in one flat ``uint64`` vector of :data:`TOTAL_REGISTERS`
    columns (stage order, schema order within a stage); the columnar
    :class:`~repro.uarch.trace.ActivityTrace` snapshots it per cycle with
    a single vectorized row copy via :meth:`flat_values`.
    """

    __slots__ = ("_flat",)

    def __init__(self) -> None:
        self._flat = np.zeros(TOTAL_REGISTERS, dtype=np.uint64)

    def write(self, stage: str, **updates: int) -> None:
        """Set latch values for ``stage``; values are masked to width."""
        flat = self._flat
        table = REGISTER_INDEX[stage]
        for name, value in updates.items():
            column, mask = table[name]
            flat[column] = value & mask

    # -- specialized per-cycle writers -----------------------------------
    # One method per fixed-shape hot write site; each stores positionally
    # through precomputed column constants.  Rare or variable-shape
    # updates (multiply/divide results, memory addresses) stay on the
    # generic :meth:`write`.

    def write_fetch(self, pc: int, instr_word: int,
                    pred_state: int) -> None:
        """Fetch-stage latches: PC, instruction word, predictor state."""
        flat = self._flat
        flat[_C_PC] = pc & _M32
        flat[_C_FETCH_INSTR] = instr_word & _M32
        flat[_C_PRED_STATE] = pred_state & _M_PRED_STATE

    def write_decode(self, instr_word: int, rs1_val: int, rs2_val: int,
                     imm: int, ctrl: int) -> None:
        """Decode-stage latches: instruction word, operands, control."""
        flat = self._flat
        flat[_C_DEC_INSTR] = instr_word & _M32
        flat[_C_RS1_VAL] = rs1_val & _M32
        flat[_C_RS2_VAL] = rs2_val & _M32
        flat[_C_DEC_IMM] = imm & _M32
        flat[_C_DEC_CTRL] = ctrl & _M_DEC_CTRL

    def write_execute(self, alu_a: int, alu_b: int, ctrl: int) -> None:
        """Execute-stage input latches and control word."""
        flat = self._flat
        flat[_C_ALU_A] = alu_a & _M32
        flat[_C_ALU_B] = alu_b & _M32
        flat[_C_EX_CTRL] = ctrl & _M_EX_CTRL

    def write_execute_out(self, alu_a: int, alu_b: int, alu_out: int,
                          ctrl: int) -> None:
        """Execute-stage inputs, single-cycle result, and control word."""
        flat = self._flat
        flat[_C_ALU_A] = alu_a & _M32
        flat[_C_ALU_B] = alu_b & _M32
        flat[_C_ALU_OUT] = alu_out & _M32
        flat[_C_EX_CTRL] = ctrl & _M_EX_CTRL

    def write_alu_out(self, value: int) -> None:
        """The ALU output latch alone (late-resolving results)."""
        self._flat[_C_ALU_OUT] = value & _M32

    def write_mem_rdata(self, value: int) -> None:
        """The memory read-data bus alone (load data return)."""
        self._flat[_C_MEM_RDATA] = value & _M32

    def write_mem_ctrl(self, ctrl: int) -> None:
        """The Memory-stage control word alone (non-memory transit)."""
        self._flat[_C_MEM_CTRL] = ctrl & _M_MEM_CTRL

    def write_writeback(self, data: int, rd: int, ctrl: int) -> None:
        """Writeback-stage latches: result data, destination, control."""
        flat = self._flat
        flat[_C_WB_DATA] = data & _M32
        flat[_C_WB_RD] = rd & _M_WB_RD
        flat[_C_WB_CTRL] = ctrl & _M_WB_CTRL

    def write_bubble(self, stage: str) -> None:
        """Drive a stage's latches to the pipeline-bubble (NOP) pattern."""
        self._flat[_BUBBLE_COLUMNS[stage]] = _BUBBLE_VALUES[stage]

    def flat_values(self) -> np.ndarray:
        """The live flat latch vector (all stages, schema order).

        Callers must treat the returned array as read-only: it is the
        latches' own storage, exposed so the trace can copy one row per
        cycle without building intermediate tuples.
        """
        return self._flat

    def values(self, stage: str) -> Tuple[int, ...]:
        """Current latch values of ``stage`` in schema order."""
        return tuple(int(value)
                     for value in self._flat[STAGE_SLICES[stage]])

    def value(self, stage: str, name: str) -> int:
        """Current value of one named latch."""
        return int(self._flat[REGISTER_INDEX[stage][name][0]])


class LegacyHardwareLatches:
    """The seed's dict-backed latch store, kept as the reference oracle.

    Byte-for-byte the pre-columnar implementation — including the
    ``dict(STAGE_REGISTERS[stage])`` rebuild on every :meth:`write` —
    so the legacy recording path measured by ``repro bench --mode
    trace`` reproduces the seed's cost profile, and property tests can
    assert the flat-vector store holds identical values.
    """

    def __init__(self) -> None:
        self._values: Dict[str, Dict[str, int]] = {
            stage: {name: 0 for name, _ in STAGE_REGISTERS[stage]}
            for stage in STAGES
        }

    def write(self, stage: str, **updates: int) -> None:
        """Set latch values for ``stage``; values are masked to width."""
        registers = self._values[stage]
        for name, value in updates.items():
            # repro: allow[P601] deliberately preserved seed behaviour —
            # this per-write dict rebuild is what the fast path replaces.
            width = dict(STAGE_REGISTERS[stage])[name]
            registers[name] = value & ((1 << width) - 1)

    # Specialized-writer API shared with HardwareLatches: the adapters
    # below just route to the seed's generic write so the legacy arm
    # keeps the seed's per-register cost profile.

    def write_fetch(self, pc: int, instr_word: int,
                    pred_state: int) -> None:
        self.write("F", pc=pc, fetch_instr=instr_word,
                   pred_state=pred_state)

    def write_decode(self, instr_word: int, rs1_val: int, rs2_val: int,
                     imm: int, ctrl: int) -> None:
        self.write("D", dec_instr=instr_word, rs1_val=rs1_val,
                   rs2_val=rs2_val, dec_imm=imm, dec_ctrl=ctrl)

    def write_execute(self, alu_a: int, alu_b: int, ctrl: int) -> None:
        self.write("E", alu_a=alu_a, alu_b=alu_b, ex_ctrl=ctrl)

    def write_execute_out(self, alu_a: int, alu_b: int, alu_out: int,
                          ctrl: int) -> None:
        self.write("E", alu_a=alu_a, alu_b=alu_b, alu_out=alu_out,
                   ex_ctrl=ctrl)

    def write_alu_out(self, value: int) -> None:
        self.write("E", alu_out=value)

    def write_mem_rdata(self, value: int) -> None:
        self.write("M", mem_rdata=value)

    def write_mem_ctrl(self, ctrl: int) -> None:
        self.write("M", mem_ctrl=ctrl)

    def write_writeback(self, data: int, rd: int, ctrl: int) -> None:
        self.write("W", wb_data=data, wb_rd=rd, wb_ctrl=ctrl)

    def write_bubble(self, stage: str) -> None:
        """Drive a stage's latches to the pipeline-bubble (NOP) pattern."""
        pattern = bubble_pattern(stage)
        self._values[stage].update(pattern)

    def values(self, stage: str) -> Tuple[int, ...]:
        """Current latch values of ``stage`` in schema order."""
        registers = self._values[stage]
        return tuple(registers[name] for name, _ in STAGE_REGISTERS[stage])

    def value(self, stage: str, name: str) -> int:
        """Current value of one named latch."""
        return self._values[stage][name]
