"""Bit-level model of the pipeline's hardware latches.

EMSim's activity-factor regression (Eq. 8) runs over "a vector of transition
bits across all the existing registers in the targeted pipeline stage".  This
module fixes the register schema of each stage — names and bit widths — and
tracks the latch values cycle by cycle so transition vectors can be derived.

The schema below corresponds to a textbook 5-stage implementation of the
paper's core: fetch PC/instruction word, decode operand/immediate latches,
execute ALU input/output and multiply unit registers, memory address/data
buses, and the writeback port.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa.instructions import NOP, Instruction

STAGES: Tuple[str, ...] = ("F", "D", "E", "M", "W")
"""Pipeline stage labels: Fetch, Decode, Execute, Memory, Writeback."""

STAGE_REGISTERS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "F": (("pc", 32), ("fetch_instr", 32), ("pred_state", 4)),
    "D": (("dec_instr", 32), ("rs1_val", 32), ("rs2_val", 32),
          ("dec_imm", 32), ("dec_ctrl", 12)),
    "E": (("alu_a", 32), ("alu_b", 32), ("alu_out", 32),
          ("muldiv_lo", 32), ("muldiv_hi", 32), ("ex_ctrl", 8)),
    "M": (("mem_addr", 32), ("mem_wdata", 32), ("mem_rdata", 32),
          ("mem_ctrl", 8)),
    "W": (("wb_data", 32), ("wb_rd", 5), ("wb_ctrl", 2)),
}
"""Per-stage latch schema: ordered (name, bit width) pairs."""


def stage_bit_count(stage: str) -> int:
    """Total latch bits tracked for ``stage``."""
    return sum(width for _, width in STAGE_REGISTERS[stage])


def stage_register_offsets(stage: str) -> Dict[str, Tuple[int, int]]:
    """Map register name -> (bit offset, width) inside the stage vector."""
    offsets = {}
    position = 0
    for name, width in STAGE_REGISTERS[stage]:
        offsets[name] = (position, width)
        position += width
    return offsets


TOTAL_BITS = sum(stage_bit_count(stage) for stage in STAGES)
"""Latch bits tracked across the whole pipeline."""


def control_word(instr: Instruction, bits: int) -> int:
    """Instruction-dependent control-signal pattern, ``bits`` wide.

    Derived from the static opcode fields so that different instruction
    kinds toggle different control wires, as decode logic would.
    """
    spec = instr.spec
    raw = spec.opcode | (spec.funct3 << 7) | (spec.funct7 << 10)
    raw ^= raw >> 7
    return raw & ((1 << bits) - 1)


NOP_CONTROL = control_word(NOP, 12)
"""Decode control pattern of the canonical NOP / pipeline bubble."""


class HardwareLatches:
    """Current value of every tracked latch, with per-stage update guards.

    The pipeline calls :meth:`write` for stages that do real work in a
    cycle; stalled stages are simply not written, so their latches hold
    their values and contribute no transitions — exactly the physical
    behaviour the paper attributes to stalls ("due to this preservation no
    bit-flips occur in the stalled stages", §IV).
    """

    def __init__(self) -> None:
        self._values: Dict[str, Dict[str, int]] = {
            stage: {name: 0 for name, _ in STAGE_REGISTERS[stage]}
            for stage in STAGES
        }

    def write(self, stage: str, **updates: int) -> None:
        """Set latch values for ``stage``; values are masked to width."""
        registers = self._values[stage]
        for name, value in updates.items():
            width = dict(STAGE_REGISTERS[stage])[name]
            registers[name] = value & ((1 << width) - 1)

    def write_bubble(self, stage: str) -> None:
        """Drive a stage's latches to the pipeline-bubble (NOP) pattern."""
        pattern = bubble_pattern(stage)
        self._values[stage].update(pattern)

    def values(self, stage: str) -> Tuple[int, ...]:
        """Current latch values of ``stage`` in schema order."""
        registers = self._values[stage]
        return tuple(registers[name] for name, _ in STAGE_REGISTERS[stage])

    def value(self, stage: str, name: str) -> int:
        """Current value of one named latch."""
        return self._values[stage][name]


def bubble_pattern(stage: str) -> Dict[str, int]:
    """Latch values representing a NOP bubble occupying ``stage``."""
    if stage == "F":
        return {"fetch_instr": NOP.encode(), "pred_state": 0}
    if stage == "D":
        return {"dec_instr": NOP.encode(), "rs1_val": 0, "rs2_val": 0,
                "dec_imm": 0, "dec_ctrl": NOP_CONTROL}
    if stage == "E":
        return {"alu_a": 0, "alu_b": 0, "alu_out": 0, "ex_ctrl": 0}
    if stage == "M":
        return {"mem_addr": 0, "mem_wdata": 0, "mem_ctrl": 0}
    if stage == "W":
        return {"wb_data": 0, "wb_rd": 0, "wb_ctrl": 0}
    raise ValueError(f"unknown stage {stage!r}")
