"""Architectural semantics of RV32IM instructions.

Pure functions implementing the user-level semantics (ALU operations,
multiply/divide, branch conditions, effective addresses) on unsigned 32-bit
integers, plus :class:`GoldenSimulator`, a simple sequential interpreter used
as the reference model when testing the pipelined core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.encoding import sign_extend, to_unsigned
from ..isa.instructions import Instruction
from ..isa.program import TEXT_BASE, Program
from ..robustness.errors import AssemblerError

MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    return sign_extend(value, 32)


def alu_result(instr: Instruction, a: int, b: int, pc: int) -> int:
    """Compute the primary 32-bit result of an instruction.

    ``a``/``b`` are the unsigned register operand values.  For loads/stores
    the result is the effective address; for jumps it is the link value.
    """
    name = instr.name
    imm = instr.imm
    if name in ("add", "addi"):
        rhs = b if name == "add" else imm
        return (a + rhs) & MASK32
    if name == "sub":
        return (a - b) & MASK32
    if name in ("and", "andi"):
        return a & (b if name == "and" else to_unsigned(imm))
    if name in ("or", "ori"):
        return a | (b if name == "or" else to_unsigned(imm))
    if name in ("xor", "xori"):
        return a ^ (b if name == "xor" else to_unsigned(imm))
    if name in ("slt", "slti"):
        rhs = _signed(b) if name == "slt" else imm
        return 1 if _signed(a) < rhs else 0
    if name in ("sltu", "sltiu"):
        rhs = b if name == "sltu" else to_unsigned(imm)
        return 1 if a < rhs else 0
    if name in ("sll", "slli"):
        shamt = (b if name == "sll" else imm) & 0x1F
        return (a << shamt) & MASK32
    if name in ("srl", "srli"):
        shamt = (b if name == "srl" else imm) & 0x1F
        return a >> shamt
    if name in ("sra", "srai"):
        shamt = (b if name == "sra" else imm) & 0x1F
        return (_signed(a) >> shamt) & MASK32
    if name == "lui":
        return (imm << 12) & MASK32
    if name == "auipc":
        return (pc + (imm << 12)) & MASK32
    if name in ("jal", "jalr"):
        return (pc + 4) & MASK32
    if instr.is_load or instr.is_store:
        return (a + imm) & MASK32
    if instr.is_muldiv:
        return muldiv_result(name, a, b)
    if instr.is_branch:
        return (pc + imm) & MASK32  # branch target (condition is separate)
    if name in ("fence", "ecall", "ebreak"):
        return 0
    raise AssemblerError(f"no ALU semantics for {name}")


def muldiv_result(name: str, a: int, b: int) -> int:
    """RV32M multiply/divide semantics (including divide-by-zero rules)."""
    sa, sb = _signed(a), _signed(b)
    if name == "mul":
        return (sa * sb) & MASK32
    if name == "mulh":
        return ((sa * sb) >> 32) & MASK32
    if name == "mulhsu":
        return ((sa * b) >> 32) & MASK32
    if name == "mulhu":
        return ((a * b) >> 32) & MASK32
    if name == "div":
        if b == 0:
            return MASK32  # -1
        if sa == -(1 << 31) and sb == -1:
            return 1 << 31  # overflow: returns dividend
        quotient = abs(sa) // abs(sb)
        return (-quotient if (sa < 0) != (sb < 0) else quotient) & MASK32
    if name == "divu":
        return MASK32 if b == 0 else (a // b) & MASK32
    if name == "rem":
        if b == 0:
            return a
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return (-remainder if sa < 0 else remainder) & MASK32
    if name == "remu":
        return a if b == 0 else (a % b) & MASK32
    raise AssemblerError(f"not a muldiv instruction: {name}")


def branch_taken(instr: Instruction, a: int, b: int) -> bool:
    """Evaluate a conditional branch on unsigned operand values."""
    name = instr.name
    if name == "beq":
        return a == b
    if name == "bne":
        return a != b
    if name == "blt":
        return _signed(a) < _signed(b)
    if name == "bge":
        return _signed(a) >= _signed(b)
    if name == "bltu":
        return a < b
    if name == "bgeu":
        return a >= b
    raise AssemblerError(f"not a branch: {name}")


def load_width(name: str) -> Tuple[int, bool]:
    """Return (bytes, signed) for a load mnemonic."""
    return {"lb": (1, True), "lbu": (1, False), "lh": (2, True),
            "lhu": (2, False), "lw": (4, True)}[name]


def store_width(name: str) -> int:
    """Return the byte width of a store mnemonic."""
    return {"sb": 1, "sh": 2, "sw": 4}[name]


def control_flow_target(instr: Instruction, pc: int, rs1_val: int) -> int:
    """Compute the taken target of a branch or jump at ``pc``."""
    if instr.name == "jalr":
        return (rs1_val + instr.imm) & ~1 & MASK32
    return (pc + instr.imm) & MASK32


# ----------------------------------------------------------------------
# Golden (sequential, non-pipelined) reference interpreter
# ----------------------------------------------------------------------
@dataclass
class GoldenSimulator:
    """Sequential RV32IM interpreter used as the pipeline's reference model.

    Executes one instruction per step with no timing model; used in tests to
    check that the pipelined core computes identical architectural state.
    """

    program: Program
    registers: List[int] = field(default_factory=lambda: [0] * 32)
    memory: Dict[int, int] = field(default_factory=dict)
    pc: int = TEXT_BASE
    halted: bool = False
    retired: int = 0

    def __post_init__(self) -> None:
        self.memory.update(self.program.data)
        self.pc = self.program.entry

    # -- memory helpers -------------------------------------------------
    def _read(self, address: int, nbytes: int, signed: bool) -> int:
        value = 0
        for index in range(nbytes):
            value |= self.memory.get((address + index) & MASK32, 0) << \
                (8 * index)
        return (sign_extend(value, 8 * nbytes) & MASK32) if signed else value

    def _write(self, address: int, value: int, nbytes: int) -> None:
        for index in range(nbytes):
            self.memory[(address + index) & MASK32] = \
                (value >> (8 * index)) & 0xFF

    # -- execution ------------------------------------------------------
    def step(self) -> Optional[Instruction]:
        """Execute one instruction; returns it, or None when halted."""
        if self.halted:
            return None
        instr = self.program.instruction_at(self.pc)
        if instr is None:
            self.halted = True
            return None
        next_pc = (self.pc + 4) & MASK32
        a = self.registers[instr.rs1]
        b = self.registers[instr.rs2]
        result = None

        if instr.name in ("ecall", "ebreak"):
            self.halted = True
        elif instr.is_load:
            nbytes, signed = load_width(instr.name)
            result = self._read((a + instr.imm) & MASK32, nbytes, signed)
        elif instr.is_store:
            self._write((a + instr.imm) & MASK32, b,
                        store_width(instr.name))
        elif instr.is_branch:
            if branch_taken(instr, a, b):
                next_pc = control_flow_target(instr, self.pc, a)
        elif instr.is_jump:
            result = (self.pc + 4) & MASK32
            next_pc = control_flow_target(instr, self.pc, a)
        elif instr.name != "fence":
            result = alu_result(instr, a, b, self.pc)

        if result is not None and instr.rd != 0:
            self.registers[instr.rd] = result
        self.pc = next_pc
        self.retired += 1
        return instr

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run to halt (or ``max_steps``); returns instructions retired."""
        for _ in range(max_steps):
            if self.step() is None:
                break
        return self.retired
