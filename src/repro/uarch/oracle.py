"""Oracle control-flow replay for the no-misprediction ablation.

EMSim's misprediction modeling is ablated (paper Fig. 7) by simulating a
core whose fetch never goes down a wrong path: a pre-execution with the
golden interpreter records every control transfer, and the pipeline replays
those outcomes as perfect fetch-time predictions.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Optional, Tuple

from ..isa.program import Program
from .isa_exec import GoldenSimulator


class OracleOutcomes:
    """Per-PC FIFO of (taken, target) outcomes for control instructions."""

    def __init__(self) -> None:
        self._queues: Dict[int, Deque[Tuple[bool, int]]] = \
            defaultdict(deque)

    def push(self, pc: int, taken: bool, target: int) -> None:
        """Record one dynamic outcome of the control instruction at pc."""
        self._queues[pc].append((taken, target))

    def pop(self, pc: int) -> Optional[Tuple[bool, int]]:
        """Consume the next outcome for ``pc`` (None if exhausted)."""
        queue = self._queues.get(pc)
        if not queue:
            return None
        return queue.popleft()

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


def collect_oracle(program: Program,
                   max_steps: int = 1_000_000) -> OracleOutcomes:
    """Pre-execute ``program`` and record every control-flow outcome."""
    golden = GoldenSimulator(program)
    outcomes = OracleOutcomes()
    for _ in range(max_steps):
        pc_before = golden.pc
        instr = golden.step()
        if instr is None:
            break
        if instr.is_branch or instr.is_jump:
            taken = golden.pc != ((pc_before + 4) & 0xFFFFFFFF) or \
                instr.is_jump
            outcomes.push(pc_before, taken, golden.pc)
    return outcomes
