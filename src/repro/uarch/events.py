"""Microarchitectural event records emitted by the pipeline.

These are the events whose EM signatures section IV of the paper models
explicitly: pipeline stalls, cache misses, and branch mispredictions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class StallCause(enum.Enum):
    """Why a stage could not advance this cycle."""

    RAW_HAZARD = "raw-hazard"
    LOAD_USE = "load-use"
    EX_BUSY = "ex-busy"          # multi-cycle MUL/DIV occupying Execute
    MEM_BUSY = "mem-busy"        # cache/memory access occupying Memory
    CACHE_MISS = "cache-miss"


@dataclass(frozen=True)
class StallEvent:
    """One stage-cycle spent stalled."""

    cycle: int
    stage: str
    cause: StallCause
    seq: Optional[int] = None    # dynamic sequence number of the stalled uop


@dataclass(frozen=True)
class CacheEvent:
    """One data-cache access."""

    cycle: int
    address: int
    is_store: bool
    hit: bool
    seq: int


@dataclass(frozen=True)
class BranchEvent:
    """A resolved conditional branch or indirect jump."""

    cycle: int
    pc: int
    taken: bool
    target: int
    predicted_taken: bool
    predicted_target: Optional[int]
    mispredicted: bool
    seq: int


@dataclass(frozen=True)
class FlushEvent:
    """Pipeline flush after a misprediction (bubbles injected)."""

    cycle: int
    flushed: int                 # number of younger instructions squashed
    redirect_pc: int
