"""Cycle-accurate model of the 5-stage in-order RV32IM core.

This is the processor of HPCA 2020 §II-A: Fetch, Decode, Execute, Memory,
Writeback; 2-level branch predictor with a BTB; 32-entry register file;
32 KB data cache (hit = one extra cycle, miss = two further cycles);
multi-cycle multiply/divide; misprediction resolved at the end of Execute
with two younger instructions flushed to bubbles.

Beyond architectural state, the pipeline maintains the hardware *latch*
model of :mod:`repro.uarch.latches`: stages that do real work update their
latches, stalled stages hold them, and flushed stages snap to the NOP bubble
pattern — producing the per-cycle transition-bit vectors that drive both the
ground-truth EM emitter and EMSim's regression model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.program import Program
from .branch import BranchTargetBuffer, make_predictor
from .cache import DataCache
from .config import CoreConfig, DEFAULT_CONFIG
from .events import (BranchEvent, CacheEvent, FlushEvent, StallCause,
                     StallEvent)
from .isa_exec import (alu_result, branch_taken, control_flow_target,
                       load_width, store_width)
from .latches import (HardwareLatches, LegacyHardwareLatches, STAGES,
                      control_word)
from .memory import MainMemory
from .regfile import RegisterFile
from .trace import (DYN_FINAL, DYN_HIT, DYN_MISS, KIND_INSTR, KIND_STALL,
                    ActivityTrace, LegacyActivityTrace, RetiredInstruction)

MASK32 = 0xFFFFFFFF


@dataclass
class _Uop:
    """One in-flight dynamic instruction."""

    instr: Instruction
    pc: int
    seq: int
    pred_taken: bool = False
    pred_target: Optional[int] = None
    rs1_val: int = 0
    rs2_val: int = 0
    result: int = 0              # ALU result / load data / link value
    mem_addr: int = 0
    store_val: int = 0
    result_ready: bool = False
    e_started: bool = False
    e_remaining: int = 0
    m_started: bool = False
    m_remaining: int = 0
    mem_hit: Optional[bool] = None
    taken: bool = False
    target: int = 0

    @property
    def writes_reg(self) -> Optional[int]:
        return self.instr.destination_register


class Pipeline:
    """The pipelined core; run a :class:`Program`, get an
    :class:`ActivityTrace` plus final architectural state."""

    def __init__(self, program: Program,
                 config: CoreConfig = DEFAULT_CONFIG,
                 alu_bug: Optional[object] = None,
                 oracle: Optional[object] = None,
                 legacy_trace: bool = False):
        self.program = program
        self.config = config
        self.regfile = RegisterFile()
        self.memory = MainMemory(program.data)
        self.cache = DataCache(config.cache)
        self.predictor = make_predictor(config.predictor,
                                        config.predictor_history_bits,
                                        config.predictor_table_bits)
        self.btb = BranchTargetBuffer(config.btb_entries)
        # legacy_trace selects the seed's object-graph recorder and
        # dict-backed latches — the reference oracle / bench baseline
        if legacy_trace:
            self.latches = LegacyHardwareLatches()
            self.trace = LegacyActivityTrace()
        else:
            self.latches = HardwareLatches()
            self.trace = ActivityTrace()
        self.alu_bug = alu_bug   # optional callable(instr, a, b) -> result
        self.oracle = oracle     # optional OracleOutcomes (perfect fetch)

        self.pc = program.entry
        self.cycle = 0
        self.next_seq = 0
        self.fetch_halted = False
        self.halted = False

        # stage slots (None = empty / bubble)
        self.f_uop: Optional[_Uop] = None
        self.d_uop: Optional[_Uop] = None
        self.e_uop: Optional[_Uop] = None
        self.m_uop: Optional[_Uop] = None
        self.w_uop: Optional[_Uop] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> ActivityTrace:
        """Run until the program halts or ``max_cycles`` elapse."""
        limit = max_cycles if max_cycles is not None \
            else self.config.max_cycles
        while not self.halted and self.cycle < limit:
            self.step()
        return self.trace

    @property
    def pipeline_empty(self) -> bool:
        """True when no in-flight instruction remains."""
        return not any((self.f_uop, self.d_uop, self.e_uop, self.m_uop,
                        self.w_uop))

    # ------------------------------------------------------------------
    # one clock cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the core by one clock cycle.

        Stages record occupancy straight into the trace (unrecorded
        stages default to bubbles); the cycle ends with one latch
        snapshot via ``end_cycle``.
        """
        # clock-edge handoff: the instruction fetched last cycle enters
        # Decode if the slot was vacated
        if self.d_uop is None and self.f_uop is not None:
            self.d_uop = self.f_uop
            self.f_uop = None

        self.trace.begin_cycle()
        self._stage_writeback()
        mem_free = self._stage_memory()
        exec_free, flush_redirect = self._stage_execute(mem_free)

        if flush_redirect is not None:
            self._flush_wrong_path(flush_redirect)
        else:
            decode_redirect = self._stage_decode(exec_free)
            self._stage_fetch(decode_redirect)

        self.trace.end_cycle(self.latches)
        self.cycle += 1
        if self.fetch_halted and self.pipeline_empty:
            self.halted = True

    def _flush_wrong_path(self, flush_redirect: int) -> None:
        """Squash the two younger wrong-path instructions — the one in
        Decode and this cycle's (suppressed) fetch: the paper's 2-cycle
        misprediction penalty.  The squashed stages stay bubbles in the
        trace and their latches snap to the bubble pattern."""
        flushed = 1 + int(self.d_uop is not None) + \
            int(self.f_uop is not None)
        self.d_uop = None
        self.f_uop = None
        self.latches.write_bubble("D")
        self.latches.write_bubble("F")
        self.pc = flush_redirect
        self.fetch_halted = False  # wrong path may have run off the end
        self.trace.flushes.append(FlushEvent(cycle=self.cycle,
                                             flushed=flushed,
                                             redirect_pc=flush_redirect))

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------
    def _stage_writeback(self) -> None:
        uop = self.w_uop
        if uop is None:
            self.latches.write_bubble("W")
            return
        rd = uop.writes_reg
        if rd is not None:
            self.regfile.write(rd, uop.result)
        self.latches.write_writeback(uop.result if rd is not None else 0,
                                     rd or 0, 1 if rd is not None else 0)
        self.trace.record("W", KIND_INSTR, uop.instr, uop.seq)
        self.trace.retired.append(RetiredInstruction(
            seq=uop.seq, pc=uop.pc, instr=uop.instr, cycle=self.cycle))
        if uop.instr.name in ("ecall", "ebreak"):
            self.fetch_halted = True
        self.w_uop = None

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _stage_memory(self) -> bool:
        """Process the Memory stage; returns True if the slot is free for
        the Execute stage to advance into."""
        uop = self.m_uop
        if uop is None:
            self.latches.write_bubble("M")
            return True
        instr = uop.instr
        if not uop.m_started:
            uop.m_started = True
            if instr.is_load or instr.is_store:
                self._memory_access(uop)
            else:
                self.latches.write_mem_ctrl(control_word(instr, 8))
                self.trace.record("M", KIND_INSTR, instr, uop.seq)
                uop.m_remaining = 0
        else:
            uop.m_remaining -= 1
            cause = StallCause.CACHE_MISS if uop.mem_hit is False \
                else StallCause.MEM_BUSY
            self.trace.record("M", KIND_STALL, instr, uop.seq,
                              DYN_MISS if uop.mem_hit is False else DYN_HIT)
            self.trace.stalls.append(StallEvent(cycle=self.cycle, stage="M",
                                                cause=cause, seq=uop.seq))
            if uop.m_remaining == 0 and instr.is_load:
                # data-return flip on the read-data bus
                self.latches.write_mem_rdata(uop.result)
                uop.result_ready = True
        if uop.m_remaining == 0:
            self.m_uop = None
            self.w_uop = uop
            return True
        return False

    def _memory_access(self, uop: _Uop) -> None:
        """First Memory cycle of a load/store: cache access + data move."""
        instr = uop.instr
        address = uop.mem_addr
        hit = self.cache.access(address, is_store=instr.is_store)
        uop.mem_hit = hit
        cache_cfg = self.config.cache
        uop.m_remaining = cache_cfg.hit_extra_cycles + \
            (0 if hit else cache_cfg.miss_extra_cycles)
        self.trace.cache_events.append(CacheEvent(
            cycle=self.cycle, address=address, is_store=instr.is_store,
            hit=hit, seq=uop.seq))
        if instr.is_store:
            self.memory.store(address, uop.store_val,
                              store_width(instr.name))
            self.latches.write("M", mem_addr=address,
                               mem_wdata=uop.store_val,
                               mem_ctrl=control_word(instr, 8))
        else:
            nbytes, signed = load_width(instr.name)
            uop.result = self.memory.load(address, nbytes, signed)
            self.latches.write("M", mem_addr=address,
                               mem_ctrl=control_word(instr, 8))
            if uop.m_remaining == 0:
                self.latches.write_mem_rdata(uop.result)
                uop.result_ready = True
        self.trace.record("M", KIND_INSTR, instr, uop.seq,
                          DYN_HIT if hit else DYN_MISS)

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def _stage_execute(self, mem_free: bool) -> Tuple[bool, Optional[int]]:
        """Process Execute; returns (slot free for Decode, flush redirect)."""
        uop = self.e_uop
        if uop is None:
            self.latches.write_bubble("E")
            return True, None
        instr = uop.instr

        if not uop.e_started:
            uop.e_started = True
            redirect = self._execute_first_cycle(uop)
            if uop.e_remaining == 0 and mem_free:
                self.e_uop = None
                self.m_uop = uop
                return True, redirect
            if uop.e_remaining == 0 and not mem_free:
                return False, redirect
            return False, redirect

        if not mem_free and uop.e_remaining == 0:
            # finished, waiting for the Memory stage to drain
            self.trace.record("E", KIND_STALL, instr, uop.seq)
            self.trace.stalls.append(StallEvent(
                cycle=self.cycle, stage="E", cause=StallCause.MEM_BUSY,
                seq=uop.seq))
            return False, None
        if uop.e_remaining == 0:
            # previously finished, was waiting on Memory; transits quietly
            self.trace.record("E", KIND_STALL, instr, uop.seq)
        if uop.e_remaining > 0:
            uop.e_remaining -= 1
            if uop.e_remaining == 0:
                # final multiply/divide cycle: result registers switch
                self.latches.write("E", alu_out=uop.result,
                                   muldiv_lo=uop.result,
                                   muldiv_hi=(uop.rs1_val * uop.rs2_val)
                                   >> 32)
                uop.result_ready = True
                self.trace.record("E", KIND_INSTR, instr, uop.seq,
                                  DYN_FINAL)
            else:
                self.trace.record("E", KIND_STALL, instr, uop.seq)
                self.trace.stalls.append(StallEvent(
                    cycle=self.cycle, stage="E", cause=StallCause.EX_BUSY,
                    seq=uop.seq))
        if uop.e_remaining == 0 and mem_free:
            self.e_uop = None
            self.m_uop = uop
            return True, None
        return False, None

    def _execute_first_cycle(self, uop: _Uop) -> Optional[int]:
        """First Execute cycle: compute, resolve control flow."""
        instr = uop.instr
        a, b = uop.rs1_val, uop.rs2_val
        operand_b = b if instr.fmt.value in ("R", "S", "B") else \
            (instr.imm & MASK32)
        self.latches.write_execute(a, operand_b, control_word(instr, 8))
        self.trace.record("E", KIND_INSTR, instr, uop.seq)
        redirect: Optional[int] = None

        if instr.is_branch:
            uop.taken = branch_taken(instr, a, b)
            uop.target = control_flow_target(instr, uop.pc, a)
            uop.result_ready = True
            self.latches.write_alu_out(uop.target if uop.taken else 0)
            redirect = self._resolve_control(uop)
        elif instr.name == "jalr":
            uop.taken = True
            uop.target = control_flow_target(instr, uop.pc, a)
            uop.result = (uop.pc + 4) & MASK32
            uop.result_ready = True
            self.latches.write_alu_out(uop.result)
            redirect = self._resolve_control(uop)
        elif instr.is_muldiv:
            uop.result = self._alu(instr, a, b, uop.pc)
            latency = self.config.mul_latency if instr.name.startswith("mul") \
                else self.config.div_latency
            uop.e_remaining = latency - 1
            if uop.e_remaining == 0:
                self.latches.write("E", alu_out=uop.result,
                                   muldiv_lo=uop.result)
                uop.result_ready = True
        else:
            uop.result = self._alu(instr, a, b, uop.pc)
            self.latches.write_alu_out(uop.result)
            if instr.is_load or instr.is_store:
                # the "result" so far is only the effective address; load
                # data becomes forwardable when Memory returns it
                uop.mem_addr = uop.result
                uop.store_val = b
            else:
                uop.result_ready = True
        return redirect

    def _alu(self, instr: Instruction, a: int, b: int, pc: int) -> int:
        """ALU computation, optionally routed through an injected bug."""
        if self.alu_bug is not None:
            bugged = self.alu_bug(instr, a, b)
            if bugged is not None:
                return bugged & MASK32
        return alu_result(instr, a, b, pc)

    def _resolve_control(self, uop: _Uop) -> Optional[int]:
        """Resolve a branch/jalr in Execute; returns a redirect PC if the
        fetch prediction was wrong (triggering a flush)."""
        instr = uop.instr
        actual_target = uop.target if uop.taken else (uop.pc + 4) & MASK32
        predicted_target = uop.pred_target if uop.pred_taken \
            else (uop.pc + 4) & MASK32
        mispredicted = (uop.taken != uop.pred_taken) or \
            (uop.taken and predicted_target != actual_target)
        if instr.is_branch:
            self.predictor.update(uop.pc, uop.taken)
        if uop.taken:
            self.btb.update(uop.pc, uop.target)
        self.trace.branch_events.append(BranchEvent(
            cycle=self.cycle, pc=uop.pc, taken=uop.taken,
            target=actual_target, predicted_taken=uop.pred_taken,
            predicted_target=uop.pred_target, mispredicted=mispredicted,
            seq=uop.seq))
        return actual_target if mispredicted else None

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _stage_decode(self, exec_free: bool) -> Optional[int]:
        """Process Decode; returns a fetch redirect PC for unpredicted
        direct jumps (jal), else None."""
        uop = self.d_uop
        if uop is None:
            self.latches.write_bubble("D")
            return None
        instr = uop.instr

        if not exec_free:
            cause = StallCause.EX_BUSY if (self.e_uop and
                                           self.e_uop.e_remaining > 0) \
                else StallCause.MEM_BUSY
            self.trace.record("D", KIND_STALL, instr, uop.seq)
            self.trace.stalls.append(StallEvent(
                cycle=self.cycle, stage="D", cause=cause, seq=uop.seq))
            return None

        operands = {}
        for reg in instr.unique_sources:
            value, ready, cause = self._operand(reg)
            if not ready:
                self.trace.record("D", KIND_STALL, instr, uop.seq)
                self.trace.stalls.append(StallEvent(
                    cycle=self.cycle, stage="D", cause=cause, seq=uop.seq))
                return None
            operands[reg] = value
        uop.rs1_val = operands.get(instr.rs1, 0)
        uop.rs2_val = operands.get(instr.rs2, 0)

        self.latches.write_decode(instr.encode(), uop.rs1_val,
                                  uop.rs2_val, instr.imm & MASK32,
                                  control_word(instr, 12))
        self.trace.record("D", KIND_INSTR, instr, uop.seq)
        self.d_uop = None
        self.e_uop = uop

        if instr.name == "jal":
            uop.taken = True
            uop.target = (uop.pc + instr.imm) & MASK32
            uop.result = (uop.pc + 4) & MASK32
            uop.result_ready = True
            self.btb.update(uop.pc, uop.target)
            if not (uop.pred_taken and uop.pred_target == uop.target):
                return uop.target  # redirect fetch, squash 1 instruction
        return None

    def _operand(self, reg: int):
        """Resolve a source register: value, readiness, stall cause.

        Scans in-flight producers youngest-first (Execute, Memory,
        Writeback slots); falls back to the register file.
        """
        if reg == 0:
            return 0, True, None
        for slot, holder in (("E", self.e_uop), ("M", self.m_uop),
                             ("W", self.w_uop)):
            if holder is None or holder.writes_reg != reg:
                continue
            if not self.config.forwarding:
                return 0, False, StallCause.RAW_HAZARD
            if holder.result_ready:
                return holder.result, True, None
            cause = StallCause.LOAD_USE if holder.instr.is_load \
                else StallCause.RAW_HAZARD
            return 0, False, cause
        return self.regfile.read(reg), True, None

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _stage_fetch(self, decode_redirect: Optional[int]) -> None:
        if decode_redirect is not None:
            # jal resolved in Decode: squash the one wrong-path fetch
            self.f_uop = None
            self.latches.write_bubble("F")
            self.pc = decode_redirect
            self.fetch_halted = False  # squashed fetch may have halted us
            return
        if self.f_uop is not None:
            # Decode is still occupied: the fetched instruction waits
            self.trace.record("F", KIND_STALL, self.f_uop.instr,
                              self.f_uop.seq)
            self.trace.stalls.append(StallEvent(
                cycle=self.cycle, stage="F",
                cause=StallCause.RAW_HAZARD, seq=self.f_uop.seq))
            return
        if self.fetch_halted:
            self.latches.write_bubble("F")
            return
        instr = self.program.instruction_at(self.pc)
        if instr is None:
            self.fetch_halted = True
            self.latches.write_bubble("F")
            return
        uop = _Uop(instr=instr, pc=self.pc, seq=self.next_seq)
        self.next_seq += 1
        self._predict(uop)
        self.latches.write_fetch(self.pc, instr.encode(),
                                 int(uop.pred_taken) |
                                 (self.predictor.state_signature() << 1))
        self.trace.record("F", KIND_INSTR, instr, uop.seq)
        self.f_uop = uop
        self.pc = uop.pred_target if (uop.pred_taken and
                                      uop.pred_target is not None) \
            else (self.pc + 4) & MASK32
        if instr.name in ("ecall", "ebreak"):
            self.fetch_halted = True

    def _predict(self, uop: _Uop) -> None:
        """Fetch-time branch/jump prediction via predictor + BTB."""
        instr = uop.instr
        if self.oracle is not None and (instr.is_branch or instr.is_jump):
            outcome = self.oracle.pop(uop.pc)
            if outcome is not None:
                uop.pred_taken, uop.pred_target = outcome
                return
        if instr.is_branch:
            target = self.btb.lookup(uop.pc)
            taken = self.predictor.predict(uop.pc) and target is not None
            uop.pred_taken = taken
            uop.pred_target = target
        elif instr.is_jump:
            target = self.btb.lookup(uop.pc)
            uop.pred_taken = target is not None
            uop.pred_target = target


def run_program(program: Program, config: CoreConfig = DEFAULT_CONFIG,
                max_cycles: Optional[int] = None,
                alu_bug: Optional[object] = None,
                oracle: Optional[object] = None,
                legacy_trace: bool = False) -> Tuple[ActivityTrace,
                                                     Pipeline]:
    """Convenience: run ``program`` on a fresh core, return (trace, core).

    ``legacy_trace=True`` records through the seed's object-graph trace
    and dict-backed latches (the reference oracle / bench baseline).
    """
    core = Pipeline(program, config=config, alu_bug=alu_bug, oracle=oracle,
                    legacy_trace=legacy_trace)
    trace = core.run(max_cycles=max_cycles)
    return trace, core
