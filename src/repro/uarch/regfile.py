"""32-entry architectural register file with x0 hardwired to zero."""

from __future__ import annotations

from typing import List


class RegisterFile:
    """The 32x32-bit integer register file of the core.

    Writes to x0 are ignored, matching the RISC-V architectural contract.
    Reads/writes are recorded as counts so the EM model can attribute
    register-file port activity.
    """

    def __init__(self) -> None:
        self._values: List[int] = [0] * 32
        self.reads = 0
        self.writes = 0
        self.last_write_value = 0

    def read(self, index: int) -> int:
        """Read register ``index`` (x0 reads as 0)."""
        self.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``index``; writes to x0 are dropped."""
        if index == 0:
            return
        self.writes += 1
        self.last_write_value = value & 0xFFFFFFFF
        self._values[index] = value & 0xFFFFFFFF

    def peek(self, index: int) -> int:
        """Read without recording activity (debug/test use)."""
        return self._values[index]

    def dump(self) -> List[int]:
        """Copy of all 32 register values."""
        return list(self._values)
