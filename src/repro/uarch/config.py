"""Configuration of the simulated in-order RV32IM core.

Defaults mirror the processor EMSim was validated on (HPCA 2020, §II-A):
five pipeline stages, a 2-level branch predictor with a BTB, a 32-entry
register file and a 32 KB data cache where a hit costs one extra cycle and a
miss costs two further cycles.  Every latency is a parameter so the paper's
"these delays can be changed, e.g. to study their effect on the side-channel
signal" knob is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the data cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    ways: int = 2
    hit_extra_cycles: int = 1    # "cache-hit takes one extra cycle"
    miss_extra_cycles: int = 2   # "reading from memory takes extra 2 cycles"

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache size must be a multiple of line*ways")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class CoreConfig:
    """Full microarchitectural configuration of the 5-stage core."""

    # Functional-unit latencies (total cycles spent in Execute).
    mul_latency: int = 3
    div_latency: int = 8

    # Data-path features.
    forwarding: bool = True

    # Branch handling: misprediction is detected at the end of Execute,
    # "2 cycles in our design", flushing two younger instructions.
    predictor: str = "two-level"  # one of: "not-taken", "two-level", "gshare"
    predictor_history_bits: int = 4
    predictor_table_bits: int = 10
    btb_entries: int = 64

    cache: CacheConfig = field(default_factory=CacheConfig)

    # Simulation guard rail.
    max_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        if self.mul_latency < 1 or self.div_latency < 1:
            raise ValueError("functional-unit latencies must be >= 1")
        if self.predictor not in ("not-taken", "two-level", "gshare"):
            raise ValueError(f"unknown predictor kind: {self.predictor!r}")


DEFAULT_CONFIG = CoreConfig()
"""The paper's baseline core configuration."""
