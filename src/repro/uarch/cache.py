"""Set-associative write-back data cache with LRU replacement.

Only timing and occupancy are modeled (data always comes from
:class:`~repro.uarch.memory.MainMemory`); the cache decides *hit or miss*,
which drives the stall cycles that dominate the EM signature of loads
(HPCA 2020, Fig. 6, and the LDM/LDC distinction of Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import CacheConfig


@dataclass
class _Line:
    tag: int
    dirty: bool = False


class DataCache:
    """LRU set-associative cache tracking hits, misses and writebacks."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        # Each set is an LRU-ordered list, most recently used last.
        self._sets: Dict[int, List[_Line]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- geometry helpers ------------------------------------------------
    def _index_and_tag(self, address: int) -> tuple:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    # -- operations --------------------------------------------------------
    def access(self, address: int, is_store: bool) -> bool:
        """Access ``address``; returns True on hit.

        Misses allocate (write-allocate policy) and may evict a dirty line,
        which is counted as a writeback.
        """
        set_index, tag = self._index_and_tag(address)
        lines = self._sets.setdefault(set_index, [])
        for position, line in enumerate(lines):
            if line.tag == tag:
                lines.append(lines.pop(position))  # promote to MRU
                if is_store:
                    line.dirty = True
                self.hits += 1
                return True
        self.misses += 1
        if len(lines) >= self.config.ways:
            victim = lines.pop(0)
            if victim.dirty:
                self.writebacks += 1
        lines.append(_Line(tag=tag, dirty=is_store))
        return False

    def probe(self, address: int) -> bool:
        """Non-destructive hit check (no allocation, no LRU update)."""
        set_index, tag = self._index_and_tag(address)
        return any(line.tag == tag
                   for line in self._sets.get(set_index, ()))

    def warm(self, addresses) -> None:
        """Pre-fill lines for the given byte addresses (test setup)."""
        for address in addresses:
            self.access(address, is_store=False)

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        self._sets.clear()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.hits + self.misses
