"""Versioned compact binary codec for activity traces (``repro-trace/1``).

The trace cache's disk layer, the supervised pool's IPC, and the
checkpoint journal all ship :class:`~repro.uarch.trace.ActivityTrace`
objects between processes and runs.  Pickling the seed's object graph
(five ``StageOccupancy`` dataclasses plus five value tuples per cycle)
costs hundreds of bytes per simulated cycle; the columnar trace is five
integer-code columns per stage plus one latch-value matrix, so it
serializes as raw little-endian array sections instead.

Layout::

    b"RTRC1\\n"                      6-byte magic, format version 1
    <u4 meta length>                little-endian
    meta JSON (UTF-8)               format name, cycle count, register
                                    schema, array section manifest
    zlib-compressed body            array sections back to back, then
                                    <u4 events length> + events JSON

Everything is deterministic — JSON is dumped with sorted keys, arrays
are C-order little-endian, zlib runs at a fixed level — so two traces
of the same program encode to identical bytes, preserving the cache's
bit-identity contract.  Instructions are stored as their 32-bit machine
words (:meth:`repro.isa.instructions.Instruction.encode` round-trips
through :meth:`~repro.isa.instructions.Instruction.decode` exactly);
event records flatten to JSON rows.  :func:`decode_trace` validates the
magic, the format name, the register schema, and every section length,
raising :class:`TraceCodecError` for truncated or corrupt input —
callers such as the trace cache treat that as a miss.  Legacy pickle
entries are recognized upstream by their first bytes (a pickle stream
never starts with the magic) and keep loading through pickle.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List

import numpy as np

from ..isa.instructions import Instruction
from ..profiling import get_profiler
from .events import (BranchEvent, CacheEvent, FlushEvent, StallCause,
                     StallEvent)
from .latches import STAGE_REGISTERS, STAGES, TOTAL_REGISTERS

FORMAT_NAME = "repro-trace/1"
"""The codec format identifier carried in every encoded header."""

MAGIC = b"RTRC1\n"
"""First bytes of every ``repro-trace/1`` stream (never a pickle's)."""

_COMPRESSION_LEVEL = 6  # fixed: compressed bytes must be deterministic

_SCHEMA = [[stage, [[name, width] for name, width in
                    STAGE_REGISTERS[stage]]] for stage in STAGES]

#: occupancy code columns serialized per stage, in section order.
_CODE_COLUMNS = (("kind", "u1"), ("instr", "<i4"), ("seq", "<i4"),
                 ("dyn", "u1"), ("em", "u1"))


# TraceCodecError lives in the typed error hierarchy (exit code 21) and
# is re-exported here, its historical home, for existing callers.
from ..robustness.errors import TraceCodecError


def is_encoded_trace(payload: bytes) -> bool:
    """Whether ``payload`` starts with the ``repro-trace/1`` magic."""
    return payload[:len(MAGIC)] == MAGIC


def _events_document(trace) -> Dict[str, Any]:
    """Flatten the trace's event lists and instruction table to JSON rows.

    Retired instructions index into the shared instruction-word table so
    identity survives the round trip; ``None`` sequence numbers and
    predicted targets stay JSON ``null``.
    """
    table = trace._instr_table
    index = {id(instr): code for code, instr in enumerate(table)}
    retired = []
    for entry in trace.retired:
        code = index.get(id(entry.instr))
        if code is None:
            code = len(table)
            table.append(entry.instr)
            index[id(entry.instr)] = code
        retired.append([entry.seq, entry.pc, code, entry.cycle])
    return {
        "instr_words": [instr.encode() for instr in table],
        "stalls": [[event.cycle, event.stage, event.cause.value, event.seq]
                   for event in trace.stalls],
        "cache": [[event.cycle, event.address, int(event.is_store),
                   int(event.hit), event.seq]
                  for event in trace.cache_events],
        "branch": [[event.cycle, event.pc, int(event.taken), event.target,
                    int(event.predicted_taken), event.predicted_target,
                    int(event.mispredicted), event.seq]
                   for event in trace.branch_events],
        "flushes": [[event.cycle, event.flushed, event.redirect_pc]
                    for event in trace.flushes],
        "retired": retired,
    }


def encode_trace(trace) -> bytes:
    """Encode a columnar :class:`ActivityTrace` to ``repro-trace/1`` bytes."""
    cycles = trace.num_cycles
    values = trace._values_all()
    assert all(width <= 32 for _, width in
               sum(map(list, map(STAGE_REGISTERS.get, STAGES)), []))
    sections: List[bytes] = [
        # repro: allow[N203] every latch is at most 32 bits wide (the
        # schema is asserted above), so the <u4 narrowing is lossless.
        np.ascontiguousarray(values).astype("<u4").tobytes()]
    manifest: List[List[Any]] = [
        ["values", "<u4", [cycles, TOTAL_REGISTERS]]]
    for column, dtype in _CODE_COLUMNS:
        for stage in STAGES:
            array = trace._code_column(column, stage)
            sections.append(np.ascontiguousarray(array).astype(
                dtype).tobytes())
            manifest.append([f"{column}.{stage}", dtype, [cycles]])
    events = json.dumps(_events_document(trace), sort_keys=True,
                        separators=(",", ":")).encode()
    body = b"".join(sections) + struct.pack("<I", len(events)) + events
    meta = json.dumps({
        "format": FORMAT_NAME,
        "cycles": cycles,
        "registers": _SCHEMA,
        "sections": manifest,
        "body_bytes": len(body),
    }, sort_keys=True, separators=(",", ":")).encode()
    get_profiler().count("trace.codec.encodes")
    return MAGIC + struct.pack("<I", len(meta)) + meta + \
        zlib.compress(body, _COMPRESSION_LEVEL)


def _parse_meta(payload: bytes) -> Dict[str, Any]:
    """Validate magic + header and return the parsed meta document."""
    if not is_encoded_trace(payload):
        raise TraceCodecError("not a repro-trace stream (bad magic)")
    offset = len(MAGIC)
    if len(payload) < offset + 4:
        raise TraceCodecError("truncated header length")
    (meta_length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    if len(payload) < offset + meta_length:
        raise TraceCodecError("truncated meta document")
    try:
        meta = json.loads(payload[offset:offset + meta_length])
    except ValueError as error:
        raise TraceCodecError(f"corrupt meta document: {error}") from error
    if not isinstance(meta, dict) or meta.get("format") != FORMAT_NAME:
        raise TraceCodecError("unknown trace format")
    if meta.get("registers") != _SCHEMA:
        raise TraceCodecError("register schema mismatch")
    meta["_body_offset"] = offset + meta_length
    return meta


def decode_trace(payload: bytes):
    """Decode ``repro-trace/1`` bytes back into a columnar trace.

    Raises :class:`TraceCodecError` for bad magic, a foreign format or
    schema, or any truncation/corruption of the compressed body.
    """
    from .trace import ActivityTrace, RetiredInstruction

    meta = _parse_meta(payload)
    cycles = meta.get("cycles")
    if not isinstance(cycles, int) or cycles < 0:
        raise TraceCodecError("corrupt cycle count")
    # the section manifest of a version-1 stream is fully determined by
    # the cycle count; anything else is header tampering, not a trace
    expected = [["values", "<u4", [cycles, TOTAL_REGISTERS]]] + \
        [[f"{column}.{stage}", dtype, [cycles]]
         for column, dtype in _CODE_COLUMNS for stage in STAGES]
    if meta.get("sections") != expected:
        raise TraceCodecError("corrupt section manifest")
    if not isinstance(meta.get("body_bytes"), int):
        raise TraceCodecError("corrupt body length")
    try:
        body = zlib.decompress(payload[meta["_body_offset"]:])
    except zlib.error as error:
        raise TraceCodecError(f"corrupt body: {error}") from error
    if len(body) != meta["body_bytes"]:
        raise TraceCodecError("body length mismatch")
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype, shape in expected:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        nbytes = count * dt.itemsize
        if offset + nbytes > len(body):
            raise TraceCodecError(f"truncated section {name!r}")
        arrays[name] = np.frombuffer(
            body, dtype=dt, count=count, offset=offset).reshape(shape)
        offset += nbytes
    if offset + 4 > len(body):
        raise TraceCodecError("truncated events length")
    (events_length,) = struct.unpack_from("<I", body, offset)
    if offset + 4 + events_length != len(body):
        raise TraceCodecError("events length mismatch")
    try:
        events = json.loads(body[offset + 4:])
    except ValueError as error:
        raise TraceCodecError(f"corrupt events: {error}") from error

    # one decode per table slot: duplicates stay distinct objects so a
    # re-encode reproduces the identical table (byte-stable round trip)
    table = [Instruction.decode(word) for word in events["instr_words"]]
    trace = ActivityTrace._from_columns(
        cycles=cycles, values=arrays["values"],
        codes={column: {stage: arrays[f"{column}.{stage}"]
                        for stage in STAGES}
               for column, _ in _CODE_COLUMNS},
        instr_table=table)
    trace.stalls = [StallEvent(cycle=cycle, stage=stage,
                               cause=StallCause(cause), seq=seq)
                    for cycle, stage, cause, seq in events["stalls"]]
    trace.cache_events = [CacheEvent(cycle=cycle, address=address,
                                     is_store=bool(store), hit=bool(hit),
                                     seq=seq)
                          for cycle, address, store, hit, seq
                          in events["cache"]]
    trace.branch_events = [
        BranchEvent(cycle=cycle, pc=pc, taken=bool(taken), target=target,
                    predicted_taken=bool(ptaken),
                    predicted_target=ptarget,
                    mispredicted=bool(mis), seq=seq)
        for cycle, pc, taken, target, ptaken, ptarget, mis, seq
        in events["branch"]]
    trace.flushes = [FlushEvent(cycle=cycle, flushed=flushed,
                                redirect_pc=redirect)
                     for cycle, flushed, redirect in events["flushes"]]
    trace.retired = [RetiredInstruction(seq=seq, pc=pc, instr=table[code],
                                        cycle=cycle)
                     for seq, pc, code, cycle in events["retired"]]
    get_profiler().count("trace.codec.decodes")
    return trace
