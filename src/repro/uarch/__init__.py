"""Cycle-accurate 5-stage in-order RV32IM core with activity tracing."""

from .branch import (AlwaysNotTaken, BranchTargetBuffer, DirectionPredictor,
                     GShare, TwoLevelAdaptive, make_predictor)
from .cache import DataCache
from .config import CacheConfig, CoreConfig, DEFAULT_CONFIG
from .events import (BranchEvent, CacheEvent, FlushEvent, StallCause,
                     StallEvent)
from .isa_exec import (GoldenSimulator, alu_result, branch_taken,
                       control_flow_target, muldiv_result)
from .latches import (HardwareLatches, LegacyHardwareLatches, STAGES,
                      STAGE_REGISTERS, STAGE_SLICES, TOTAL_BITS,
                      TOTAL_REGISTERS, bubble_pattern, control_word,
                      stage_bit_count, stage_register_offsets)
from .memory import MainMemory
from .ooo import OutOfOrderCore, run_program_ooo
from .oracle import OracleOutcomes, collect_oracle
from .pipeline import Pipeline, run_program
from .regfile import RegisterFile
from .trace import (ActivityTrace, DYN_FINAL, DYN_HIT, DYN_MISS, DYN_NONE,
                    EM_CLASSES, KIND_BUBBLE, KIND_INSTR, KIND_STALL,
                    LegacyActivityTrace, OCC_BUBBLE, OCC_INSTR, OCC_STALL,
                    RetiredInstruction, StageOccupancy, concat_traces)
from .tracecodec import (TraceCodecError, decode_trace, encode_trace,
                         is_encoded_trace)

__all__ = [
    "ActivityTrace",
    "AlwaysNotTaken",
    "BranchEvent",
    "BranchTargetBuffer",
    "CacheConfig",
    "CacheEvent",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "DYN_FINAL",
    "DYN_HIT",
    "DYN_MISS",
    "DYN_NONE",
    "DataCache",
    "DirectionPredictor",
    "EM_CLASSES",
    "FlushEvent",
    "GShare",
    "GoldenSimulator",
    "HardwareLatches",
    "KIND_BUBBLE",
    "KIND_INSTR",
    "KIND_STALL",
    "LegacyActivityTrace",
    "LegacyHardwareLatches",
    "MainMemory",
    "OCC_BUBBLE",
    "OCC_INSTR",
    "OCC_STALL",
    "OracleOutcomes",
    "OutOfOrderCore",
    "Pipeline",
    "RegisterFile",
    "RetiredInstruction",
    "STAGES",
    "STAGE_REGISTERS",
    "STAGE_SLICES",
    "StageOccupancy",
    "StallCause",
    "StallEvent",
    "TOTAL_BITS",
    "TOTAL_REGISTERS",
    "TraceCodecError",
    "TwoLevelAdaptive",
    "alu_result",
    "branch_taken",
    "bubble_pattern",
    "collect_oracle",
    "concat_traces",
    "control_flow_target",
    "control_word",
    "decode_trace",
    "encode_trace",
    "is_encoded_trace",
    "make_predictor",
    "muldiv_result",
    "run_program",
    "run_program_ooo",
    "stage_bit_count",
    "stage_register_offsets",
]
