"""EMSim reproduction: microarchitecture-level EM side-channel simulation.

Reproduction of "EMSim: A Microarchitecture-Level Simulation Tool for
Modeling Electromagnetic Side-Channel Signals" (Sehatbakhsh, Yilmaz,
Zajic, Prvulovic - HPCA 2020).

Public API layers:

* :mod:`repro.isa` - RV32IM instruction set, assembler, programs;
* :mod:`repro.uarch` - cycle-accurate 5-stage core with bit-level
  activity tracing;
* :mod:`repro.signal` - kernels, reconstruction, acquisition, metrics;
* :mod:`repro.hardware` - synthetic ground-truth device bench;
* :mod:`repro.core` - EMSim: model, training, clustering, simulator;
* :mod:`repro.leakage` - TVLA, SAVAT, AES, hardware debugging;
* :mod:`repro.workloads` - program generators and canned kernels.

Quick start::

    from repro import HardwareDevice, train_emsim, EMSim, assemble
    device = HardwareDevice()
    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)
    program = assemble("li t0, 42\\nmul t1, t0, t0\\nebreak")
    result = simulator.simulate(program)
"""

from .core import (EMSim, EMSimConfig, EMSimModel, ModelSwitches, Trainer,
                   coverage_groups, make_simulator, train_emsim)
from .hardware import (ARTY, BOARDS, DE0_CV, DE1, DeviceInstance,
                       HardwareDevice, Measurement, ProbePosition)
from .isa import Instruction, NOP, Program, assemble
from .leakage import aes_program, savat_matrix, tvla
from .signal import simulation_accuracy
from .uarch import CoreConfig, GoldenSimulator, Pipeline, run_program
from .workloads import RandomProgramBuilder

__version__ = "1.0.0"

__all__ = [
    "ARTY",
    "BOARDS",
    "CoreConfig",
    "DE0_CV",
    "DE1",
    "DeviceInstance",
    "EMSim",
    "EMSimConfig",
    "EMSimModel",
    "GoldenSimulator",
    "HardwareDevice",
    "Instruction",
    "Measurement",
    "ModelSwitches",
    "NOP",
    "Pipeline",
    "ProbePosition",
    "Program",
    "RandomProgramBuilder",
    "Trainer",
    "aes_program",
    "assemble",
    "coverage_groups",
    "make_simulator",
    "run_program",
    "savat_matrix",
    "simulation_accuracy",
    "train_emsim",
    "tvla",
    "__version__",
]
