"""Zero-copy shared-memory transport for campaign results.

Campaign workers ship large float64 trace arrays back to the parent —
measurement signals, per-cycle amplitudes, TVLA trace groups.  The
default pickle pipe serializes every byte through the pool's result
queue; for multi-megabyte trace matrices that copy dominates the
fan-out.  This module moves the *payload* through POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and sends only a tiny
:class:`SharedArrayRef` token through the pipe:

* the **worker** exports qualifying arrays (``>=``
  :data:`SHARED_MEMORY_THRESHOLD_BYTES`) into fresh segments under the
  fan-out's arena prefix and returns refs in their place
  (:func:`export_value`);
* the **parent**'s :class:`SharedArrayArena` claims each ref as the
  result is reaped — materializing the array and unlinking the segment
  immediately — so downstream consumers (checkpoint journaling
  included) see ordinary ``ndarray`` values, bit-identical to the
  pickle path;
* a **sweep** at arena close unlinks any segment the parent never
  claimed (crashed/timed-out/quarantined attempts), so supervision
  failure modes cannot leak ``/dev/shm`` entries.

Everything degrades automatically: platforms without usable shared
memory (or ``REPRO_NO_SHM=1``) fall back to the ordinary codec/pickle
transport, and :func:`export_value` leaves values untouched on any
segment-creation failure.  Only the transport changes — never the
values — which is what the transport-identity property tests assert.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from .observability.metrics import get_metrics

__all__ = ["SharedArrayRef", "SharedArrayArena", "export_value",
           "shared_memory_available", "SHARED_MEMORY_THRESHOLD_BYTES"]

SHARED_MEMORY_THRESHOLD_BYTES = 16384
"""Arrays smaller than this ride the ordinary pickle pipe — a segment
round trip (shm_open/mmap/unlink) costs more than copying a few KB."""

_ARENA_ENV_DISABLE = "REPRO_NO_SHM"
"""Environment kill-switch: set to force the codec/pickle transport."""

_SHM_DIR = "/dev/shm"

# parent-side arena serial (distinguishes arenas within one process)
_ARENA_COUNTER = 0
# worker-side export serial (distinguishes segments within one worker)
_EXPORT_COUNTER = 0


def _unregister_segment(segment: object) -> None:
    """Detach a segment from this process's resource tracker.

    The arena owns segment lifetime explicitly (claim unlinks, sweep
    collects strays); Python's per-process resource tracker would
    otherwise unlink live segments at worker exit and warn about
    "leaked" ones the parent is still reading.
    """
    with contextlib.suppress(ImportError, KeyError, AttributeError,
                             OSError, ValueError):
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")


def shared_memory_available() -> bool:
    """True when POSIX shared memory works here and is not disabled."""
    if os.environ.get(_ARENA_ENV_DISABLE):
        return False
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (ImportError, OSError, FileNotFoundError):
        return False
    probe.close()
    probe.unlink()   # unlink also unregisters from the tracker
    return True


@dataclass(frozen=True)
class SharedArrayRef:
    """Pipe-sized token standing in for an exported array.

    Names the shared-memory ``segment`` holding the raw bytes plus the
    ``shape``/``dtype`` needed to reinterpret them.  Refs are plain
    picklable dataclasses, so they pass the supervised pool's IPC
    hygiene gate (repro-lint X701 allowlists them) and survive the
    result queue at a few dozen bytes regardless of payload size.
    """

    segment: str
    shape: Tuple[int, ...]
    dtype: str

    def materialize(self) -> np.ndarray:
        """Copy the segment's bytes out into an ordinary owned array."""
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(name=self.segment)
        _unregister_segment(segment)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                              buffer=segment.buf)
            return np.array(view, copy=True)
        finally:
            segment.close()


def _export_array(array: np.ndarray, prefix: str) -> Optional[SharedArrayRef]:
    """Move one array into a fresh segment; None on any failure."""
    global _EXPORT_COUNTER
    from multiprocessing import shared_memory
    name = f"{prefix}w{os.getpid()}n{_EXPORT_COUNTER}"
    _EXPORT_COUNTER += 1
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name)
    except (OSError, FileNotFoundError, ValueError):
        return None
    _unregister_segment(segment)
    try:
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=segment.buf)
        view[...] = array
    finally:
        segment.close()
    return SharedArrayRef(segment=name, shape=tuple(array.shape),
                          dtype=array.dtype.str)


def _exportable(value: object,
                threshold: int) -> bool:
    """Whether a value is an array worth moving through shared memory."""
    return (isinstance(value, np.ndarray) and
            value.dtype.hasobject is False and
            value.nbytes >= threshold)


def export_value(value: Any, prefix: str,
                 threshold: int = SHARED_MEMORY_THRESHOLD_BYTES) -> Any:
    """Replace large arrays inside a worker result with segment refs.

    Walks the shapes campaign workers actually return — bare arrays,
    dataclass records with array fields (``CampaignProbe``), and
    lists/tuples of either — exporting every qualifying array under the
    arena ``prefix``.  Anything else (and any export that fails) passes
    through unchanged, so the pickle fallback is always sound.
    """
    registry = get_metrics()
    if _exportable(value, threshold):
        ref = _export_array(value, prefix)
        if ref is None:
            registry.increment("ipc.shm.fallbacks")
            return value
        registry.increment("ipc.shm.exported")
        return ref
    if isinstance(value, (list, tuple)):
        converted = [export_value(item, prefix, threshold)
                     for item in value]
        return type(value)(converted)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field in dataclasses.fields(value):
            current = getattr(value, field.name)
            if _exportable(current, threshold):
                exported = export_value(current, prefix, threshold)
                try:
                    setattr(value, field.name, exported)
                except dataclasses.FrozenInstanceError:
                    return value
        return value
    return value


class SharedArrayArena:
    """Parent-side lifecycle manager for one fan-out's segments.

    Owns the arena ``prefix`` workers export under, claims refs back
    into ordinary arrays as results are reaped, and sweeps unclaimed
    segments (from crashed, timed-out, or quarantined attempts) when
    the fan-out finishes.  Use as a context manager or call
    :meth:`close` explicitly.
    """

    def __init__(self) -> None:
        global _ARENA_COUNTER
        _ARENA_COUNTER += 1
        self.prefix = f"repro-arena{os.getpid()}c{_ARENA_COUNTER}"
        self._closed = False

    @classmethod
    def create_if_available(cls) -> "Optional[SharedArrayArena]":
        """An arena when shared memory works here; None otherwise."""
        if shared_memory_available():
            return cls()
        return None

    def claim(self, value: Any) -> Any:
        """Materialize every :class:`SharedArrayRef` inside a result.

        The segment is unlinked as soon as its bytes are copied out, so
        a claimed result holds no shared-memory references — checkpoint
        journaling and downstream consumers see plain arrays.
        """
        registry = get_metrics()
        if isinstance(value, SharedArrayRef):
            array = value.materialize()
            self._unlink(value.segment)
            registry.increment("ipc.shm.claimed")
            return array
        if isinstance(value, (list, tuple)):
            return type(value)([self.claim(item) for item in value])
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for field in dataclasses.fields(value):
                current = getattr(value, field.name)
                if isinstance(current, SharedArrayRef):
                    setattr(value, field.name, self.claim(current))
            return value
        return value

    def _unlink(self, name: str) -> None:
        """Remove one segment from the system (idempotent)."""
        with contextlib.suppress(OSError):
            os.unlink(os.path.join(_SHM_DIR, name))

    def sweep(self) -> int:
        """Unlink every leftover segment under this arena's prefix.

        Covers attempts whose results were never reaped: crashed or
        SIGKILL'd workers, deadline rebuilds, quarantined items, and
        innocent resubmissions whose first attempt also completed.
        Returns the number of segments collected.
        """
        collected = 0
        try:
            entries = sorted(os.listdir(_SHM_DIR))
        except OSError:
            return 0
        for entry in entries:
            if entry.startswith(self.prefix):
                self._unlink(entry)
                collected += 1
        if collected:
            get_metrics().increment("ipc.shm.swept", collected)
        return collected

    def close(self) -> None:
        """Sweep stray segments and retire the arena."""
        if not self._closed:
            self._closed = True
            self.sweep()

    def __enter__(self) -> "SharedArrayArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
