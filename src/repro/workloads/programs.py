"""Canned benchmark kernels written in RV32IM assembly.

Small, realistic programs used by the examples, tests, and benchmark
harness: the kind of embedded/IoT codes the paper's introduction motivates.
"""

from __future__ import annotations

from ..isa.assembler import assemble
from ..isa.program import Program


def dot_product(length: int = 16) -> Program:
    """Integer dot product of two vectors of ``length`` words."""
    words_a = ", ".join(str((3 * i + 1) & 0xFFFF) for i in range(length))
    words_b = ", ".join(str((7 * i + 2) & 0xFFFF) for i in range(length))
    source = f"""
.data
.org 0x10000
vec_a: .word {words_a}
vec_b: .word {words_b}
.text
    la   t0, vec_a
    la   t1, vec_b
    li   t2, {length}
    li   a0, 0
loop:
    lw   t3, 0(t0)
    lw   t4, 0(t1)
    mul  t5, t3, t4
    add  a0, a0, t5
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    ebreak
"""
    return assemble(source, name=f"dot_product_{length}")


def memcpy(words: int = 32) -> Program:
    """Word-wise memory copy of ``words`` words."""
    initial = ", ".join(str((0x1234 + 17 * i) & 0xFFFFFFFF)
                        for i in range(words))
    source = f"""
.data
.org 0x10000
src: .word {initial}
.org 0x12000
dst: .space {4 * words}
.text
    la   t0, src
    la   t1, dst
    li   t2, {words}
copy:
    lw   t3, 0(t0)
    sw   t3, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, copy
    ebreak
"""
    return assemble(source, name=f"memcpy_{words}")


def fibonacci(n: int = 12) -> Program:
    """Iterative Fibonacci; result in a0."""
    source = f"""
.text
    li   t0, {n}
    li   a0, 0
    li   a1, 1
fib:
    beqz t0, done
    add  t2, a0, a1
    mv   a0, a1
    mv   a1, t2
    addi t0, t0, -1
    j    fib
done:
    ebreak
"""
    return assemble(source, name=f"fibonacci_{n}")


def bubble_sort(length: int = 10) -> Program:
    """In-place bubble sort of ``length`` words (worst-case input)."""
    words = ", ".join(str(length - i) for i in range(length))
    source = f"""
.data
.org 0x10000
array: .word {words}
.text
    li   s2, {length}
outer:
    addi s2, s2, -1
    blez s2, done
    la   t0, array
    li   t1, 0
inner:
    lw   t2, 0(t0)
    lw   t3, 4(t0)
    ble  t2, t3, noswap
    sw   t3, 0(t0)
    sw   t2, 4(t0)
noswap:
    addi t0, t0, 4
    addi t1, t1, 1
    blt  t1, s2, inner
    j    outer
done:
    ebreak
"""
    return assemble(source, name=f"bubble_sort_{length}")


def checksum(words: int = 64) -> Program:
    """Rotate-and-xor checksum over a data block (cache-heavy)."""
    initial = ", ".join(str((0xA5A5A5A5 ^ (i * 0x01010101)) & 0xFFFFFFFF)
                        for i in range(words))
    source = f"""
.data
.org 0x10000
block: .word {initial}
.text
    la   t0, block
    li   t1, {words}
    li   a0, 0
sum:
    lw   t2, 0(t0)
    slli t3, a0, 5
    srli a0, a0, 27
    or   a0, a0, t3
    xor  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, sum
    ebreak
"""
    return assemble(source, name=f"checksum_{words}")


def crc32(words: int = 16) -> Program:
    """Bitwise CRC-32 (reflected 0xEDB88320) over a data block.

    Dense shift/xor/branch mix — the kind of integrity-check loop that
    runs constantly on embedded devices.
    """
    initial = ", ".join(str((0xC0FFEE00 + 37 * i) & 0xFFFFFFFF)
                        for i in range(words))
    source = f"""
.data
.org 0x10000
block: .word {initial}
.text
    la   t0, block
    li   t1, {words}
    li   a0, -1            # crc = 0xFFFFFFFF
    li   t5, 0xEDB88320
word_loop:
    lw   t2, 0(t0)
    xor  a0, a0, t2
    li   t3, 32
bit_loop:
    andi t4, a0, 1
    srli a0, a0, 1
    beqz t4, no_poly
    xor  a0, a0, t5
no_poly:
    addi t3, t3, -1
    bnez t3, bit_loop
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, word_loop
    not  a0, a0
    ebreak
"""
    return assemble(source, name=f"crc32_{words}")


def matmul(size: int = 4) -> Program:
    """Dense ``size`` x ``size`` integer matrix multiply (MUL-heavy)."""
    a_words = ", ".join(str((2 * i + 1) & 0xFF) for i in range(size * size))
    b_words = ", ".join(str((3 * i + 2) & 0xFF) for i in range(size * size))
    source = f"""
.data
.org 0x10000
mat_a: .word {a_words}
.org 0x10400
mat_b: .word {b_words}
.org 0x10800
mat_c: .space {4 * size * size}
.text
    li   s2, 0              # i
row:
    li   s3, 0              # j
col:
    li   s4, 0              # k
    li   a0, 0              # acc
inner:
    li   t0, {size}
    mul  t1, s2, t0
    add  t1, t1, s4         # i*size + k
    slli t1, t1, 2
    la   t2, mat_a
    add  t2, t2, t1
    lw   t3, 0(t2)
    mul  t1, s4, t0
    add  t1, t1, s3         # k*size + j
    slli t1, t1, 2
    la   t2, mat_b
    add  t2, t2, t1
    lw   t4, 0(t2)
    mul  t5, t3, t4
    add  a0, a0, t5
    addi s4, s4, 1
    blt  s4, t0, inner
    mul  t1, s2, t0
    add  t1, t1, s3
    slli t1, t1, 2
    la   t2, mat_c
    add  t2, t2, t1
    sw   a0, 0(t2)
    addi s3, s3, 1
    blt  s3, t0, col
    addi s2, s2, 1
    blt  s2, t0, row
    ebreak
"""
    return assemble(source, name=f"matmul_{size}")


ALL_KERNELS = {
    "dot_product": dot_product,
    "memcpy": memcpy,
    "fibonacci": fibonacci,
    "bubble_sort": bubble_sort,
    "checksum": checksum,
    "crc32": crc32,
    "matmul": matmul,
}
"""Name -> factory for every canned kernel."""
