"""Cryptographic kernels: modular exponentiation (square-and-multiply).

The classic simple-power-analysis (SPA) target the paper's introduction
motivates: an RSA-style ``base^exponent mod modulus`` whose naive
implementation takes a key-dependent branch per exponent bit.  Two
variants are generated:

* **leaky** — left-to-right square-and-multiply with a conditional
  multiply (`if bit: acc = acc*base mod m`): each 1-bit costs an extra
  multiply, visible in both timing and EM amplitude;
* **constant-time** — always multiplies and selects the result with a
  branch-free mask, the standard SPA countermeasure.

The modulus is kept below 2^16 so the 32-bit ``remu`` reduces products
exactly.
"""

from __future__ import annotations

from typing import List

from ..isa.assembler import assemble
from ..isa.program import Program

LOOP_SYMBOL = "bitloop"
"""Label of the per-exponent-bit loop head (SPA segmentation anchor)."""

DONE_SYMBOL = "bitloop_done"
"""Label of the first instruction after the loop (final boundary)."""


def modexp_reference(base: int, exponent: int, modulus: int,
                     bits: int = 16) -> int:
    """Reference ``base^exponent mod modulus`` over the top ``bits``."""
    accumulator = 1
    for index in range(bits - 1, -1, -1):
        accumulator = (accumulator * accumulator) % modulus
        if (exponent >> index) & 1:
            accumulator = (accumulator * base) % modulus
    return accumulator


def modexp_program(base: int, exponent: int, modulus: int,
                   bits: int = 16,
                   constant_time: bool = False) -> Program:
    """Generate the modular-exponentiation program.

    Registers: a0 = base, a1 = exponent, a2 = modulus; the result lands
    in a3 and is also stored to ``0x10000``.
    """
    if not 1 < modulus < (1 << 16):
        raise ValueError("modulus must fit in 16 bits (exact remu "
                         "reduction)")
    if not 0 <= exponent < (1 << bits):
        raise ValueError(f"exponent must fit in {bits} bits")
    body: List[str]
    if constant_time:
        body = [
            "    mul  t2, a3, a0",
            "    remu t2, t2, a2       # candidate: acc*base mod m",
            "    srl  t1, a1, t0",
            "    andi t1, t1, 1        # key bit",
            "    sub  t3, zero, t1     # 0x00000000 or 0xFFFFFFFF",
            "    and  t2, t2, t3",
            "    not  t4, t3",
            "    and  t5, a3, t4",
            "    or   a3, t2, t5       # branch-free select",
        ]
    else:
        body = [
            "    srl  t1, a1, t0",
            "    andi t1, t1, 1        # key bit",
            "    beqz t1, skip_mul     # <-- key-dependent branch (SPA)",
            "    mul  t2, a3, a0",
            "    remu a3, t2, a2",
            "skip_mul:",
        ]
    source = "\n".join([
        ".text",
        f"    li   a0, {base % modulus}",
        f"    li   a1, {exponent}",
        f"    li   a2, {modulus}",
        "    li   a3, 1",
        f"    li   t0, {bits}",
        f"{LOOP_SYMBOL}:",
        "    addi t0, t0, -1",
        "    mul  t2, a3, a3",
        "    remu a3, t2, a2       # square",
    ] + body + [
        f"    bnez t0, {LOOP_SYMBOL}",
        f"{DONE_SYMBOL}:",
        "    li   t6, 0x10000",
        "    sw   a3, 0(t6)",
        "    ebreak",
    ])
    name = f"modexp_{'ct' if constant_time else 'leaky'}_{bits}b"
    return assemble(source, name=name)
