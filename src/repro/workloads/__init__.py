"""Workload generators and canned kernels for tests and benchmarks."""

from .crypto import (DONE_SYMBOL, LOOP_SYMBOL, modexp_program,
                     modexp_reference)
from .generators import (RandomProgramBuilder, SCRATCH_BASE, SCRATCH_WORDS,
                         nop_padded, wrap_program)
from .programs import (ALL_KERNELS, bubble_sort, checksum, crc32,
                       dot_product, fibonacci, matmul, memcpy)

__all__ = [
    "ALL_KERNELS",
    "RandomProgramBuilder",
    "SCRATCH_BASE",
    "SCRATCH_WORDS",
    "DONE_SYMBOL",
    "LOOP_SYMBOL",
    "bubble_sort",
    "checksum",
    "crc32",
    "dot_product",
    "fibonacci",
    "matmul",
    "memcpy",
    "modexp_program",
    "modexp_reference",
    "nop_padded",
    "wrap_program",
]
