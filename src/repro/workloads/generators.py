"""Random and structured workload generators.

Used for differential testing of the pipeline against the golden
interpreter, for EMSim training corpora, and for the paper's randomized
microbenchmark groups (§V-A: random operands, loops with random iteration
counts).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from ..isa.instructions import Instruction, NOP
from ..isa.program import DATA_BASE, Program, store_words

SCRATCH_BASE = DATA_BASE
"""Base address of the scratch data region used by generated programs."""

SCRATCH_WORDS = 512
"""Words of pre-initialized scratch data."""

# Registers the generators may freely clobber (t/a/s registers, not sp/gp).
WORK_REGISTERS = (5, 6, 7, 28, 29, 30, 31, 10, 11, 12, 13, 14,
                  15, 16, 17, 18, 19, 20, 21)

BASE_REGISTER = 3  # gp holds SCRATCH_BASE in generated programs

ALU_OPS = ("add", "sub", "and", "or", "xor", "slt", "sltu")
ALU_IMM_OPS = ("addi", "andi", "ori", "xori", "slti", "sltiu")
SHIFT_OPS = ("sll", "srl", "sra")
SHIFT_IMM_OPS = ("slli", "srli", "srai")
MULDIV_OPS = ("mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu")
LOAD_OPS = ("lb", "lh", "lw", "lbu", "lhu")
STORE_OPS = ("sb", "sh", "sw")
BRANCH_OPS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def _scratch_preamble() -> List[Instruction]:
    """Instructions setting gp to the scratch base address."""
    upper = (SCRATCH_BASE + 0x800) >> 12
    lower = SCRATCH_BASE & 0xFFF
    if lower >= 0x800:
        lower -= 0x1000
    return [Instruction("lui", rd=BASE_REGISTER, imm=upper & 0xFFFFF),
            Instruction("addi", rd=BASE_REGISTER, rs1=BASE_REGISTER,
                        imm=lower)]


def _scratch_data() -> dict:
    """Deterministic pseudo-random scratch words."""
    rng = random.Random(0xE351)
    data: dict = {}
    store_words(data, SCRATCH_BASE,
                [rng.getrandbits(32) for _ in range(SCRATCH_WORDS)])
    return data


def wrap_program(instructions: Iterable[Instruction],
                 name: str = "generated",
                 seed_registers: bool = True,
                 append_ebreak: bool = True) -> Program:
    """Wrap an instruction sequence into a runnable :class:`Program`.

    Prepends the scratch-pointer preamble, appends ``ebreak``, and
    initializes the scratch data region.
    """
    body = list(instructions)
    code = (_scratch_preamble() if seed_registers else []) + body
    if append_ebreak:
        code.append(Instruction("ebreak"))
    return Program(instructions=code, data=_scratch_data(), name=name)


class RandomProgramBuilder:
    """Generates random-yet-safe RV32IM programs.

    All memory accesses stay inside the scratch region; control flow is
    limited to bounded loops and short forward branches, so every generated
    program terminates.
    """

    def __init__(self, seed: int = 0,
                 include_muldiv: bool = True,
                 include_memory: bool = True,
                 include_branches: bool = True):
        self.rng = random.Random(seed)
        self.include_muldiv = include_muldiv
        self.include_memory = include_memory
        self.include_branches = include_branches

    # -- single-instruction helpers --------------------------------------
    def _reg(self) -> int:
        return self.rng.choice(WORK_REGISTERS)

    def random_alu(self) -> Instruction:
        """One random ALU/shift instruction (register or immediate form)."""
        kind = self.rng.randrange(4)
        if kind == 0:
            return Instruction(self.rng.choice(ALU_OPS), rd=self._reg(),
                               rs1=self._reg(), rs2=self._reg())
        if kind == 1:
            return Instruction(self.rng.choice(ALU_IMM_OPS), rd=self._reg(),
                               rs1=self._reg(),
                               imm=self.rng.randrange(-2048, 2048))
        if kind == 2:
            return Instruction(self.rng.choice(SHIFT_OPS), rd=self._reg(),
                               rs1=self._reg(), rs2=self._reg())
        return Instruction(self.rng.choice(SHIFT_IMM_OPS), rd=self._reg(),
                           rs1=self._reg(), imm=self.rng.randrange(32))

    def random_muldiv(self) -> Instruction:
        """One random multiply/divide instruction."""
        return Instruction(self.rng.choice(MULDIV_OPS), rd=self._reg(),
                           rs1=self._reg(), rs2=self._reg())

    def random_load(self) -> Instruction:
        """One random load from the scratch region."""
        name = self.rng.choice(LOAD_OPS)
        width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[name]
        offset = self.rng.randrange(0, 4 * SCRATCH_WORDS - 4)
        offset -= offset % width
        return Instruction(name, rd=self._reg(), rs1=BASE_REGISTER,
                           imm=min(offset, 2047 - (2047 % width)))

    def random_store(self) -> Instruction:
        """One random store into the scratch region."""
        name = self.rng.choice(STORE_OPS)
        width = {"sb": 1, "sh": 2, "sw": 4}[name]
        offset = self.rng.randrange(0, 2040)
        offset -= offset % width
        return Instruction(name, rs2=self._reg(), rs1=BASE_REGISTER,
                           imm=offset)

    def random_forward_branch(self) -> List[Instruction]:
        """A conditional branch skipping 1-2 following instructions."""
        skip = self.rng.randrange(1, 3)
        branch = Instruction(self.rng.choice(BRANCH_OPS), rs1=self._reg(),
                             rs2=self._reg(), imm=4 * (skip + 1))
        return [branch] + [self.random_alu() for _ in range(skip)]

    def counted_loop(self, body_length: int = 3,
                     iterations: Optional[int] = None) -> List[Instruction]:
        """A bounded countdown loop with a random body."""
        iterations = iterations or self.rng.randrange(2, 6)
        counter = 22  # s6, reserved for loop counters
        body = [self.random_alu() for _ in range(body_length)]
        return ([Instruction("addi", rd=counter, rs1=0, imm=iterations)] +
                body +
                [Instruction("addi", rd=counter, rs1=counter, imm=-1),
                 Instruction("bne", rs1=counter, rs2=0,
                             imm=-4 * (len(body) + 1))])

    # -- whole-program generation ----------------------------------------
    def instructions(self, count: int) -> List[Instruction]:
        """Generate approximately ``count`` instructions."""
        result: List[Instruction] = []
        while len(result) < count:
            roll = self.rng.random()
            if roll < 0.45:
                result.append(self.random_alu())
            elif roll < 0.55 and self.include_muldiv:
                result.append(self.random_muldiv())
            elif roll < 0.70 and self.include_memory:
                result.append(self.random_load())
            elif roll < 0.80 and self.include_memory:
                result.append(self.random_store())
            elif roll < 0.90 and self.include_branches:
                result.extend(self.random_forward_branch())
            elif self.include_branches:
                result.extend(self.counted_loop())
            else:
                result.append(self.random_alu())
        return result  # may exceed count slightly to finish a loop/branch

    def program(self, count: int, name: str = "random") -> Program:
        """Generate a runnable random program of about ``count``
        instructions."""
        return wrap_program(self.instructions(count), name=name)


def nop_padded(instructions: Sequence[Instruction], before: int = 6,
               after: int = 6, name: str = "probe") -> Program:
    """NOP → sequence → NOP probe program (paper §III-B)."""
    code = [NOP] * before + list(instructions) + [NOP] * after
    return wrap_program(code, name=name, seed_registers=False,
                        append_ebreak=True)
