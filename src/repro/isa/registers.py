"""RISC-V integer register file naming.

Maps between architectural register indices (``x0`` .. ``x31``) and the
standard RISC-V ABI mnemonics (``zero``, ``ra``, ``sp`` ...).  The assembler
accepts either spelling; the rest of the package uses plain integer indices.
"""

from __future__ import annotations

from ..robustness.errors import AssemblerError

NUM_REGISTERS = 32
"""Number of architectural integer registers in RV32I."""

XLEN = 32
"""Register width in bits for the RV32 base ISA."""

ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)
"""ABI mnemonic for each register index, ``ABI_NAMES[i]`` names ``x{i}``."""

_NAME_TO_INDEX = {name: index for index, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX.update({f"x{index}": index for index in range(NUM_REGISTERS)})
_NAME_TO_INDEX["fp"] = 8  # frame pointer aliases s0


def register_index(name: str) -> int:
    """Return the architectural index for a register name.

    Accepts ``x``-prefixed names (``x7``), ABI names (``t2``) and the ``fp``
    alias.  Raises :class:`ValueError` for anything else.
    """
    key = name.strip().lower()
    if key not in _NAME_TO_INDEX:
        raise AssemblerError(f"unknown register name: {name!r}")
    return _NAME_TO_INDEX[key]


def register_name(index: int) -> str:
    """Return the canonical ABI name for register ``index``."""
    if not 0 <= index < NUM_REGISTERS:
        raise AssemblerError(f"register index out of range: {index}")
    return ABI_NAMES[index]
