"""RV32IM instruction-set specification tables.

This module is the single source of truth for the instruction set implemented
by the reproduction: the RV32I base integer ISA plus the "M"
multiply/divide extension, exactly the ISA of the processor EMSim was
evaluated on (HPCA 2020, section II-A).

Each mnemonic maps to an :class:`OpSpec` describing its encoding format,
opcode/funct fields and a coarse semantic class used throughout the
microarchitecture and the signal model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..robustness.errors import AssemblerError


class InstrFormat(enum.Enum):
    """The six RV32 encoding formats (RISC-V spec v2.2, section 2.2)."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"


class InstrClass(enum.Enum):
    """Coarse semantic class of an instruction.

    These labels mirror the behavioural families the paper's clustering
    recovers in Table I (ALU, Shift, MUL/DIV, Load, Store, Branch; the
    seventh "Cache" cluster is the cache-hit variant of loads and is a
    *dynamic* property, so it does not appear here).
    """

    ALU = "alu"
    SHIFT = "shift"
    MULDIV = "muldiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


@dataclass(frozen=True)
class OpSpec:
    """Static encoding/semantic description of one mnemonic."""

    name: str
    fmt: InstrFormat
    opcode: int
    funct3: int
    funct7: int
    cls: InstrClass

    @property
    def is_memory(self) -> bool:
        """True for instructions that access the data memory hierarchy."""
        return self.cls in (InstrClass.LOAD, InstrClass.STORE)


# Major opcodes (RISC-V spec v2.2, table 19.1).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011
OP_FENCE = 0b0001111
OP_SYSTEM = 0b1110011


def _spec(name, fmt, opcode, funct3=0, funct7=0, cls=InstrClass.ALU):
    return OpSpec(name=name, fmt=fmt, opcode=opcode, funct3=funct3,
                  funct7=funct7, cls=cls)


OPCODES: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        # --- RV32I upper-immediate / jumps -------------------------------
        _spec("lui", InstrFormat.U, OP_LUI, cls=InstrClass.ALU),
        _spec("auipc", InstrFormat.U, OP_AUIPC, cls=InstrClass.ALU),
        _spec("jal", InstrFormat.J, OP_JAL, cls=InstrClass.JUMP),
        _spec("jalr", InstrFormat.I, OP_JALR, funct3=0b000,
              cls=InstrClass.JUMP),
        # --- RV32I conditional branches ----------------------------------
        _spec("beq", InstrFormat.B, OP_BRANCH, funct3=0b000,
              cls=InstrClass.BRANCH),
        _spec("bne", InstrFormat.B, OP_BRANCH, funct3=0b001,
              cls=InstrClass.BRANCH),
        _spec("blt", InstrFormat.B, OP_BRANCH, funct3=0b100,
              cls=InstrClass.BRANCH),
        _spec("bge", InstrFormat.B, OP_BRANCH, funct3=0b101,
              cls=InstrClass.BRANCH),
        _spec("bltu", InstrFormat.B, OP_BRANCH, funct3=0b110,
              cls=InstrClass.BRANCH),
        _spec("bgeu", InstrFormat.B, OP_BRANCH, funct3=0b111,
              cls=InstrClass.BRANCH),
        # --- RV32I loads / stores ----------------------------------------
        _spec("lb", InstrFormat.I, OP_LOAD, funct3=0b000,
              cls=InstrClass.LOAD),
        _spec("lh", InstrFormat.I, OP_LOAD, funct3=0b001,
              cls=InstrClass.LOAD),
        _spec("lw", InstrFormat.I, OP_LOAD, funct3=0b010,
              cls=InstrClass.LOAD),
        _spec("lbu", InstrFormat.I, OP_LOAD, funct3=0b100,
              cls=InstrClass.LOAD),
        _spec("lhu", InstrFormat.I, OP_LOAD, funct3=0b101,
              cls=InstrClass.LOAD),
        _spec("sb", InstrFormat.S, OP_STORE, funct3=0b000,
              cls=InstrClass.STORE),
        _spec("sh", InstrFormat.S, OP_STORE, funct3=0b001,
              cls=InstrClass.STORE),
        _spec("sw", InstrFormat.S, OP_STORE, funct3=0b010,
              cls=InstrClass.STORE),
        # --- RV32I register-immediate ALU --------------------------------
        _spec("addi", InstrFormat.I, OP_IMM, funct3=0b000),
        _spec("slti", InstrFormat.I, OP_IMM, funct3=0b010),
        _spec("sltiu", InstrFormat.I, OP_IMM, funct3=0b011),
        _spec("xori", InstrFormat.I, OP_IMM, funct3=0b100),
        _spec("ori", InstrFormat.I, OP_IMM, funct3=0b110),
        _spec("andi", InstrFormat.I, OP_IMM, funct3=0b111),
        _spec("slli", InstrFormat.I, OP_IMM, funct3=0b001, funct7=0b0000000,
              cls=InstrClass.SHIFT),
        _spec("srli", InstrFormat.I, OP_IMM, funct3=0b101, funct7=0b0000000,
              cls=InstrClass.SHIFT),
        _spec("srai", InstrFormat.I, OP_IMM, funct3=0b101, funct7=0b0100000,
              cls=InstrClass.SHIFT),
        # --- RV32I register-register ALU ---------------------------------
        _spec("add", InstrFormat.R, OP_REG, funct3=0b000, funct7=0b0000000),
        _spec("sub", InstrFormat.R, OP_REG, funct3=0b000, funct7=0b0100000),
        _spec("sll", InstrFormat.R, OP_REG, funct3=0b001, funct7=0b0000000,
              cls=InstrClass.SHIFT),
        _spec("slt", InstrFormat.R, OP_REG, funct3=0b010, funct7=0b0000000),
        _spec("sltu", InstrFormat.R, OP_REG, funct3=0b011, funct7=0b0000000),
        _spec("xor", InstrFormat.R, OP_REG, funct3=0b100, funct7=0b0000000),
        _spec("srl", InstrFormat.R, OP_REG, funct3=0b101, funct7=0b0000000,
              cls=InstrClass.SHIFT),
        _spec("sra", InstrFormat.R, OP_REG, funct3=0b101, funct7=0b0100000,
              cls=InstrClass.SHIFT),
        _spec("or", InstrFormat.R, OP_REG, funct3=0b110, funct7=0b0000000),
        _spec("and", InstrFormat.R, OP_REG, funct3=0b111, funct7=0b0000000),
        # --- M extension --------------------------------------------------
        _spec("mul", InstrFormat.R, OP_REG, funct3=0b000, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("mulh", InstrFormat.R, OP_REG, funct3=0b001, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("mulhsu", InstrFormat.R, OP_REG, funct3=0b010, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("mulhu", InstrFormat.R, OP_REG, funct3=0b011, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("div", InstrFormat.R, OP_REG, funct3=0b100, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("divu", InstrFormat.R, OP_REG, funct3=0b101, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("rem", InstrFormat.R, OP_REG, funct3=0b110, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        _spec("remu", InstrFormat.R, OP_REG, funct3=0b111, funct7=0b0000001,
              cls=InstrClass.MULDIV),
        # --- misc ----------------------------------------------------------
        _spec("fence", InstrFormat.I, OP_FENCE, funct3=0b000,
              cls=InstrClass.SYSTEM),
        _spec("ecall", InstrFormat.I, OP_SYSTEM, funct3=0b000,
              cls=InstrClass.SYSTEM),
        _spec("ebreak", InstrFormat.I, OP_SYSTEM, funct3=0b000,
              cls=InstrClass.SYSTEM),
    ]
}
"""Mnemonic -> :class:`OpSpec` for all of RV32IM."""


# Decoding index: (opcode, funct3, funct7-or-None) -> mnemonic.  Entries with
# ``None`` funct keys match any value of that field.
_DECODE_INDEX: Dict[Tuple[int, int, int], str] = {}
for _name, _s in OPCODES.items():
    if _name in ("ecall", "ebreak"):
        continue  # disambiguated by imm, handled in decode()
    if _s.fmt is InstrFormat.R or _name in ("slli", "srli", "srai"):
        _DECODE_INDEX[(_s.opcode, _s.funct3, _s.funct7)] = _name
    else:
        _DECODE_INDEX[(_s.opcode, _s.funct3, -1)] = _name


def lookup_decode(opcode: int, funct3: int, funct7: int, imm: int = 0) -> str:
    """Return the mnemonic for a decoded field triple.

    ``imm`` disambiguates ``ecall`` (imm=0) from ``ebreak`` (imm=1).
    Raises :class:`ValueError` if the fields name no RV32IM instruction.
    """
    if opcode == OP_SYSTEM and funct3 == 0:
        return "ebreak" if (imm & 0xFFF) == 1 else "ecall"
    for key in ((opcode, funct3, funct7), (opcode, funct3, -1)):
        if key in _DECODE_INDEX:
            return _DECODE_INDEX[key]
    # U/J formats carry no funct3.
    for name in ("lui", "auipc", "jal"):
        if OPCODES[name].opcode == opcode:
            return name
    raise AssemblerError(
        f"cannot decode opcode={opcode:#09b} funct3={funct3:#05b} "
        f"funct7={funct7:#09b}"
    )


ALL_MNEMONICS = tuple(sorted(OPCODES))
"""All supported mnemonics, sorted, for enumeration in tests/benchmarks."""
