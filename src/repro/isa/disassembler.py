"""Disassembly of RV32IM machine words back to assembly text."""

from __future__ import annotations

from typing import Iterable, List

from .instructions import Instruction


def disassemble_word(word: int) -> str:
    """Disassemble one 32-bit machine word to canonical assembly text."""
    return Instruction.decode(word).to_asm()


def disassemble(words: Iterable[int], base_address: int = 0) -> List[str]:
    """Disassemble a sequence of words to ``address: text`` lines."""
    lines = []
    for index, word in enumerate(words):
        address = base_address + 4 * index
        lines.append(f"{address:08x}: {disassemble_word(word)}")
    return lines
