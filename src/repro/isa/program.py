"""Program container: code, initial data image, and symbols.

A :class:`Program` is what the assembler produces and what the pipeline,
the hardware emitter, and EMSim all consume.  Code lives at
:data:`TEXT_BASE`; the initial data image is a sparse ``address -> byte``
mapping applied to main memory before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .instructions import Instruction

TEXT_BASE = 0x0000_0000
"""Base address of the code segment."""

DATA_BASE = 0x0001_0000
"""Default base address of the data segment."""


@dataclass
class Program:
    """An executable image for the simulated RV32IM core."""

    instructions: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE
    name: str = "program"

    def __post_init__(self) -> None:
        for address, value in self.data.items():
            if not 0 <= value < 256:
                raise ValueError(
                    f"data byte at {address:#x} out of range: {value}")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def machine_code(self) -> List[int]:
        """Encoded 32-bit words, one per instruction."""
        return [instr.encode() for instr in self.instructions]

    def instruction_at(self, address: int) -> Optional[Instruction]:
        """Return the instruction at byte ``address`` or None if outside."""
        offset = address - TEXT_BASE
        if offset < 0 or offset % 4:
            return None
        index = offset // 4
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def address_of(self, index: int) -> int:
        """Byte address of the ``index``-th instruction."""
        return TEXT_BASE + 4 * index

    def with_data_words(self, base: int, words: Sequence[int]) -> "Program":
        """Return a copy with 32-bit little-endian ``words`` stored at ``base``.

        Used to poke inputs (e.g. AES plaintexts) into a program image
        without reassembling.
        """
        data = dict(self.data)
        for offset, word in enumerate(words):
            word &= 0xFFFFFFFF
            address = base + 4 * offset
            for byte_index in range(4):
                data[address + byte_index] = (word >> (8 * byte_index)) & 0xFF
        return Program(instructions=list(self.instructions), data=data,
                       symbols=dict(self.symbols), entry=self.entry,
                       name=self.name)

    def to_asm(self) -> str:
        """Render the code segment as assembly text (no labels)."""
        return "\n".join(instr.to_asm() for instr in self.instructions)

    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction],
                          name: str = "program") -> "Program":
        """Build a program from a plain instruction sequence."""
        return cls(instructions=list(instructions), name=name)


def store_words(data: Dict[int, int], base: int,
                words: Sequence[int]) -> None:
    """Write 32-bit little-endian ``words`` into a byte map at ``base``."""
    for offset, word in enumerate(words):
        word &= 0xFFFFFFFF
        address = base + 4 * offset
        for byte_index in range(4):
            data[address + byte_index] = (word >> (8 * byte_index)) & 0xFF
