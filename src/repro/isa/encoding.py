"""Binary encoding and decoding of RV32IM instruction words.

Implements the six standard RISC-V encoding formats (R/I/S/B/U/J) with the
scrambled immediate layouts of the B and J formats, exactly as specified in
the RISC-V user-level ISA v2.2.  Round-tripping ``decode(encode(i)) == i``
holds for every representable instruction and is enforced by property-based
tests.
"""

from __future__ import annotations

from typing import Dict

from ..robustness.errors import AssemblerError
from .spec import (
    InstrFormat,
    OPCODES,
    lookup_decode,
)

WORD_MASK = 0xFFFFFFFF

# Legal immediate ranges per format (inclusive), after sign interpretation.
IMM_RANGES = {
    InstrFormat.I: (-(1 << 11), (1 << 11) - 1),
    InstrFormat.S: (-(1 << 11), (1 << 11) - 1),
    InstrFormat.B: (-(1 << 12), (1 << 12) - 2),
    InstrFormat.U: (0, (1 << 20) - 1),
    InstrFormat.J: (-(1 << 20), (1 << 20) - 2),
}


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement number."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 32) -> int:
    """Clamp a (possibly negative) Python int to an unsigned ``bits`` field."""
    return value & ((1 << bits) - 1)


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < 32:
        raise AssemblerError(f"{name} out of range: {value}")


def _check_imm(fmt: InstrFormat, imm: int) -> None:
    lo, hi = IMM_RANGES[fmt]
    if not lo <= imm <= hi:
        raise AssemblerError(f"immediate {imm} out of range for "
                             f"{fmt.value} format [{lo}, {hi}]")
    if fmt in (InstrFormat.B, InstrFormat.J) and imm % 2:
        raise AssemblerError(f"{fmt.value}-format immediate must be "
                             f"even: {imm}")


def encode(name: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
           imm: int = 0) -> int:
    """Encode one instruction to its 32-bit machine word.

    ``imm`` is the *semantic* immediate: byte offset for branches/jumps,
    sign-extended 12-bit value for I/S formats, raw 20-bit value for U
    formats, and the shift amount for ``slli``/``srli``/``srai``.
    """
    spec = OPCODES[name]
    fmt = spec.fmt
    _check_reg("rd", rd)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)

    if name in ("slli", "srli", "srai"):
        if not 0 <= imm < 32:
            raise AssemblerError(f"shift amount out of range: {imm}")
        return (spec.funct7 << 25 | imm << 20 | rs1 << 15 |
                spec.funct3 << 12 | rd << 7 | spec.opcode)
    if name == "ebreak":
        return 1 << 20 | spec.opcode
    if name == "ecall":
        return spec.opcode

    if fmt is InstrFormat.R:
        return (spec.funct7 << 25 | rs2 << 20 | rs1 << 15 |
                spec.funct3 << 12 | rd << 7 | spec.opcode)
    _check_imm(fmt, imm)
    if fmt is InstrFormat.I:
        uimm = to_unsigned(imm, 12)
        return (uimm << 20 | rs1 << 15 | spec.funct3 << 12 | rd << 7 |
                spec.opcode)
    if fmt is InstrFormat.S:
        uimm = to_unsigned(imm, 12)
        return ((uimm >> 5) << 25 | rs2 << 20 | rs1 << 15 |
                spec.funct3 << 12 | (uimm & 0x1F) << 7 | spec.opcode)
    if fmt is InstrFormat.B:
        uimm = to_unsigned(imm, 13)
        return (((uimm >> 12) & 1) << 31 | ((uimm >> 5) & 0x3F) << 25 |
                rs2 << 20 | rs1 << 15 | spec.funct3 << 12 |
                ((uimm >> 1) & 0xF) << 8 | ((uimm >> 11) & 1) << 7 |
                spec.opcode)
    if fmt is InstrFormat.U:
        return to_unsigned(imm, 20) << 12 | rd << 7 | spec.opcode
    if fmt is InstrFormat.J:
        uimm = to_unsigned(imm, 21)
        return (((uimm >> 20) & 1) << 31 | ((uimm >> 1) & 0x3FF) << 21 |
                ((uimm >> 11) & 1) << 20 | ((uimm >> 12) & 0xFF) << 12 |
                rd << 7 | spec.opcode)
    raise AssertionError(f"unhandled format {fmt}")


def decode(word: int) -> Dict[str, int]:
    """Decode a 32-bit machine word into its fields.

    Returns a dict with keys ``name``, ``rd``, ``rs1``, ``rs2``, ``imm``.
    Register fields not used by the instruction's format are returned as 0.
    Raises :class:`ValueError` for unrecognized encodings.
    """
    word &= WORD_MASK
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = sign_extend(word >> 20, 12)

    name = lookup_decode(opcode, funct3, funct7, imm=word >> 20)
    fmt = OPCODES[name].fmt

    if name in ("slli", "srli", "srai"):
        return {"name": name, "rd": rd, "rs1": rs1, "rs2": 0, "imm": rs2}
    if name in ("ecall", "ebreak"):
        return {"name": name, "rd": 0, "rs1": 0, "rs2": 0, "imm": 0}

    if fmt is InstrFormat.R:
        return {"name": name, "rd": rd, "rs1": rs1, "rs2": rs2, "imm": 0}
    if fmt is InstrFormat.I:
        return {"name": name, "rd": rd, "rs1": rs1, "rs2": 0, "imm": imm_i}
    if fmt is InstrFormat.S:
        imm = sign_extend(((word >> 25) << 5) | rd, 12)
        return {"name": name, "rd": 0, "rs1": rs1, "rs2": rs2, "imm": imm}
    if fmt is InstrFormat.B:
        imm = sign_extend(
            ((word >> 31) & 1) << 12 | ((word >> 7) & 1) << 11 |
            ((word >> 25) & 0x3F) << 5 | ((word >> 8) & 0xF) << 1, 13)
        return {"name": name, "rd": 0, "rs1": rs1, "rs2": rs2, "imm": imm}
    if fmt is InstrFormat.U:
        return {"name": name, "rd": rd, "rs1": 0, "rs2": 0,
                "imm": (word >> 12) & 0xFFFFF}
    if fmt is InstrFormat.J:
        imm = sign_extend(
            ((word >> 31) & 1) << 20 | ((word >> 12) & 0xFF) << 12 |
            ((word >> 20) & 1) << 11 | ((word >> 21) & 0x3FF) << 1, 21)
        return {"name": name, "rd": rd, "rs1": 0, "rs2": 0, "imm": imm}
    raise AssertionError(f"unhandled format {fmt}")
