"""Two-pass RV32IM assembler.

Turns assembly text into a :class:`~repro.isa.program.Program`.  Supports:

* all RV32IM mnemonics from :mod:`repro.isa.spec`;
* labels (``loop:``) and branch/jump targets by label;
* the usual pseudo-instructions (``nop``, ``li``, ``la``, ``mv``, ``j``,
  ``jr``, ``ret``, ``call``, ``not``, ``neg``, ``seqz``, ``snez``,
  ``beqz``/``bnez``/``blez``/``bgez``/``bltz``/``bgtz``, ``bgt``/``ble``/
  ``bgtu``/``bleu``);
* ``%hi()`` / ``%lo()`` relocation operators;
* data directives: ``.text``, ``.data``, ``.org`` (data only), ``.word``,
  ``.half``, ``.byte``, ``.space``, ``.align``, ``.equ``.

The text segment is contiguous from ``TEXT_BASE``; data items land in the
sparse byte image of the produced program.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .encoding import sign_extend
from .instructions import Instruction
from .program import DATA_BASE, TEXT_BASE, Program
from .registers import register_index
from .spec import OPCODES, InstrClass, InstrFormat


# AssemblerError lives in the typed error hierarchy (exit code 20) and
# is re-exported here, its historical home, for existing callers.
from ..robustness.errors import AssemblerError


_COMMENT_RE = re.compile(r"[#;].*$")
_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(\s*([\w.$]+)\s*\)$")
_HI_LO_RE = re.compile(r"^%(hi|lo)\(\s*(.+?)\s*\)$")


@dataclass
class _Item:
    """One assembled unit: a machine instruction or a span of data bytes."""

    kind: str                      # "instr" or "data"
    address: int = 0
    emit: Optional[Callable[["Assembler", int], Instruction]] = None
    data_bytes: bytes = b""
    line_number: int = 0
    line: str = ""


@dataclass
class Assembler:
    """Two-pass assembler; use :func:`assemble` for the one-shot API."""

    data_base: int = DATA_BASE
    symbols: Dict[str, int] = field(default_factory=dict)

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        items, data_image = self._pass1(source)
        instructions: List[Instruction] = []
        for item in items:
            if item.kind != "instr":
                continue
            assert item.emit is not None
            try:
                instructions.append(item.emit(self, item.address))
            except AssemblerError:
                raise
            except ValueError as exc:
                raise AssemblerError(str(exc), item.line_number,
                                     item.line) from exc
        return Program(instructions=instructions, data=data_image,
                       symbols=dict(self.symbols), name=name)

    # ------------------------------------------------------------------
    # pass 1: tokenize, expand pseudos, lay out addresses, record labels
    # ------------------------------------------------------------------
    def _pass1(self, source: str) -> Tuple[List[_Item], Dict[int, int]]:
        items: List[_Item] = []
        data_image: Dict[int, int] = {}
        segment = "text"
        text_address = TEXT_BASE
        data_address = self.data_base

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw_line).strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AssemblerError(f"duplicate label {label!r}",
                                         line_number, raw_line)
                self.symbols[label] = (text_address if segment == "text"
                                       else data_address)
                line = line[match.end():].strip()
            if not line:
                continue

            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = [op.strip() for op in rest.split(",")] if rest.strip() \
                else []

            if mnemonic.startswith("."):
                segment, text_address, data_address = self._directive(
                    mnemonic, operands, segment, text_address, data_address,
                    data_image, line_number, raw_line)
                continue

            if segment != "text":
                raise AssemblerError("instruction outside .text segment",
                                     line_number, raw_line)
            for emitter in self._expand(mnemonic, operands, line_number,
                                        raw_line):
                items.append(_Item(kind="instr", address=text_address,
                                   emit=emitter, line_number=line_number,
                                   line=raw_line))
                text_address += 4
        return items, data_image

    def _directive(self, directive, operands, segment, text_address,
                   data_address, data_image, line_number, raw_line):
        """Handle one assembler directive; returns updated layout state."""
        if directive == ".text":
            return "text", text_address, data_address
        if directive == ".data":
            return "data", text_address, data_address
        if directive == ".equ":
            if len(operands) != 2:
                raise AssemblerError(".equ needs name, value", line_number,
                                     raw_line)
            self.symbols[operands[0]] = self._int_literal(operands[1],
                                                          line_number,
                                                          raw_line)
            return segment, text_address, data_address
        if directive == ".org":
            if segment == "text":
                raise AssemblerError(".org not allowed in .text (code must "
                                     "be contiguous)", line_number, raw_line)
            return segment, text_address, self._int_literal(
                operands[0], line_number, raw_line)
        if directive == ".align":
            amount = 1 << self._int_literal(operands[0], line_number,
                                            raw_line)
            if segment == "data":
                data_address = (data_address + amount - 1) & ~(amount - 1)
            else:
                if text_address % amount:
                    raise AssemblerError(".align would pad .text",
                                         line_number, raw_line)
            return segment, text_address, data_address
        if directive == ".space":
            if segment != "data":
                raise AssemblerError(".space only valid in .data",
                                     line_number, raw_line)
            count = self._int_literal(operands[0], line_number, raw_line)
            for offset in range(count):
                data_image[data_address + offset] = 0
            return segment, text_address, data_address + count
        if directive in (".word", ".half", ".byte"):
            if segment != "data":
                raise AssemblerError(f"{directive} only valid in .data",
                                     line_number, raw_line)
            width = {".word": 4, ".half": 2, ".byte": 1}[directive]
            for operand in operands:
                value = self._int_literal(operand, line_number, raw_line)
                value &= (1 << (8 * width)) - 1
                for byte_index in range(width):
                    data_image[data_address + byte_index] = \
                        (value >> (8 * byte_index)) & 0xFF
                data_address += width
            return segment, text_address, data_address
        raise AssemblerError(f"unknown directive {directive!r}", line_number,
                             raw_line)

    # ------------------------------------------------------------------
    # operand / expression evaluation
    # ------------------------------------------------------------------
    def _int_literal(self, text: str, line_number: int, line: str) -> int:
        """Evaluate an expression that must not contain forward references."""
        try:
            return self._eval(text, pc=None)
        except KeyError as exc:
            raise AssemblerError(f"undefined symbol {exc.args[0]!r} in "
                                 f"constant expression", line_number,
                                 line) from exc

    def _eval(self, text: str, pc: Optional[int]) -> int:
        """Evaluate ``int``, ``symbol``, ``symbol±int``, ``%hi/%lo(expr)``."""
        text = text.strip()
        match = _HI_LO_RE.match(text)
        if match:
            value = self._eval(match.group(2), pc) & 0xFFFFFFFF
            if match.group(1) == "hi":
                # %hi compensates for the sign-extension of the paired %lo.
                return ((value + 0x800) >> 12) & 0xFFFFF
            return sign_extend(value, 12)
        for operator in ("+", "-"):
            index = text.rfind(operator)
            if index > 0 and text[index - 1] != "(":
                left, right = text[:index], text[index + 1:]
                if left.strip() and right.strip():
                    try:
                        lhs = self._eval(left, pc)
                        rhs = self._eval(right, pc)
                    except KeyError:
                        continue
                    return lhs + rhs if operator == "+" else lhs - rhs
        try:
            return int(text, 0)
        except ValueError:
            # not an integer literal: fall back to the symbol table
            if text in self.symbols:
                return self.symbols[text]
        raise KeyError(text)

    def _resolve(self, text: str, pc: int, line_number: int,
                 line: str) -> int:
        try:
            return self._eval(text, pc)
        except KeyError as exc:
            raise AssemblerError(f"undefined symbol {exc.args[0]!r}",
                                 line_number, line) from exc

    def _reg(self, text: str, line_number: int, line: str) -> int:
        try:
            return register_index(text)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_number, line) from exc

    # ------------------------------------------------------------------
    # pseudo-instruction expansion; returns a list of deferred emitters
    # ------------------------------------------------------------------
    def _expand(self, mnemonic, operands, line_number, line):
        """Expand one source line into 1+ deferred instruction emitters.

        Emitters are callables ``(assembler, address) -> Instruction`` so
        that label references can be resolved in pass 2.
        """
        def err(message: str) -> AssemblerError:
            return AssemblerError(message, line_number, line)

        def need(count: int) -> None:
            if len(operands) != count:
                raise err(f"{mnemonic} expects {count} operands, got "
                          f"{len(operands)}")

        reg = lambda text: self._reg(text, line_number, line)  # noqa: E731

        def value_of(text):
            def emit_value(assembler, pc):
                return assembler._resolve(text, pc, line_number, line)
            return emit_value

        def simple(name, **fields):
            """Emitter for an instruction with pre-resolved fields."""
            def emit(assembler, pc):
                resolved = {key: (val(assembler, pc) if callable(val)
                                  else val)
                            for key, val in fields.items()}
                return Instruction(name, **resolved)
            return [emit]

        def pc_relative(name, rd_or_rs, rs2, target_text):
            """Emitter for branches/jumps.

            A label (or symbol expression) names an absolute target and
            is turned into ``target - pc``; a bare integer literal is the
            pc-relative offset itself (matching disassembly output).
            """
            def emit(assembler, pc):
                try:
                    offset = int(target_text.strip(), 0)
                except ValueError:
                    target = assembler._resolve(target_text, pc,
                                                line_number, line)
                    offset = target - pc
                return Instruction(name, rd=rd_or_rs if name == "jal" else 0,
                                   rs1=0 if name == "jal" else rd_or_rs,
                                   rs2=rs2, imm=offset)
            return [emit]

        # ---- pseudo-instructions -------------------------------------
        if mnemonic == "nop":
            need(0)
            return simple("addi", rd=0, rs1=0, imm=0)
        if mnemonic == "mv":
            need(2)
            return simple("addi", rd=reg(operands[0]), rs1=reg(operands[1]),
                          imm=0)
        if mnemonic == "not":
            need(2)
            return simple("xori", rd=reg(operands[0]), rs1=reg(operands[1]),
                          imm=-1)
        if mnemonic == "neg":
            need(2)
            return simple("sub", rd=reg(operands[0]), rs1=0,
                          rs2=reg(operands[1]))
        if mnemonic == "seqz":
            need(2)
            return simple("sltiu", rd=reg(operands[0]), rs1=reg(operands[1]),
                          imm=1)
        if mnemonic == "snez":
            need(2)
            return simple("sltu", rd=reg(operands[0]), rs1=0,
                          rs2=reg(operands[1]))
        if mnemonic == "li":
            need(2)
            rd = reg(operands[0])
            value = self._int_literal(operands[1], line_number, line)
            value = sign_extend(value, 32)
            if -(1 << 11) <= value < (1 << 11):
                return simple("addi", rd=rd, rs1=0, imm=value)
            upper = ((value + 0x800) >> 12) & 0xFFFFF
            lower = sign_extend(value, 12)
            return (simple("lui", rd=rd, imm=upper) +
                    simple("addi", rd=rd, rs1=rd, imm=lower))
        if mnemonic == "la":
            need(2)
            rd = reg(operands[0])
            symbol = operands[1]
            return (simple("lui", rd=rd,
                           imm=value_of(f"%hi({symbol})")) +
                    simple("addi", rd=rd, rs1=rd,
                           imm=value_of(f"%lo({symbol})")))
        if mnemonic == "j":
            need(1)
            return pc_relative("jal", 0, 0, operands[0])
        if mnemonic == "call":
            need(1)
            return pc_relative("jal", 1, 0, operands[0])
        if mnemonic == "jr":
            need(1)
            return simple("jalr", rd=0, rs1=reg(operands[0]), imm=0)
        if mnemonic == "ret":
            need(0)
            return simple("jalr", rd=0, rs1=1, imm=0)
        zero_branches = {"beqz": ("beq", False), "bnez": ("bne", False),
                         "bltz": ("blt", False), "bgez": ("bge", False),
                         "blez": ("bge", True), "bgtz": ("blt", True)}
        if mnemonic in zero_branches:
            need(2)
            name, swapped = zero_branches[mnemonic]
            rs = reg(operands[0])
            rs1, rs2 = (0, rs) if swapped else (rs, 0)
            return pc_relative(name, rs1, rs2, operands[1])
        swapped_branches = {"bgt": "blt", "ble": "bge", "bgtu": "bltu",
                            "bleu": "bgeu"}
        if mnemonic in swapped_branches:
            need(3)
            return pc_relative(swapped_branches[mnemonic], reg(operands[1]),
                               reg(operands[0]), operands[2])

        # ---- real instructions ---------------------------------------
        if mnemonic not in OPCODES:
            raise err(f"unknown mnemonic {mnemonic!r}")
        spec = OPCODES[mnemonic]

        if mnemonic in ("ecall", "ebreak", "fence"):
            return simple(mnemonic)
        if spec.fmt is InstrFormat.R:
            need(3)
            return simple(mnemonic, rd=reg(operands[0]), rs1=reg(operands[1]),
                          rs2=reg(operands[2]))
        if mnemonic in ("slli", "srli", "srai"):
            need(3)
            return simple(mnemonic, rd=reg(operands[0]),
                          rs1=reg(operands[1]),
                          imm=value_of(operands[2]))
        if spec.cls is InstrClass.LOAD or mnemonic == "jalr":
            if len(operands) == 2:
                match = _MEM_OPERAND_RE.match(operands[1])
                if not match:
                    raise err(f"{mnemonic} expects 'rd, imm(rs1)'")
                offset_text, base_reg = match.groups()
                return simple(mnemonic, rd=reg(operands[0]),
                              rs1=reg(base_reg),
                              imm=value_of(offset_text or "0"))
            need(3)  # jalr rd, rs1, imm form
            return simple(mnemonic, rd=reg(operands[0]),
                          rs1=reg(operands[1]), imm=value_of(operands[2]))
        if spec.cls is InstrClass.STORE:
            need(2)
            match = _MEM_OPERAND_RE.match(operands[1])
            if not match:
                raise err(f"{mnemonic} expects 'rs2, imm(rs1)'")
            offset_text, base_reg = match.groups()
            return simple(mnemonic, rs2=reg(operands[0]), rs1=reg(base_reg),
                          imm=value_of(offset_text or "0"))
        if spec.fmt is InstrFormat.I:
            need(3)
            return simple(mnemonic, rd=reg(operands[0]),
                          rs1=reg(operands[1]), imm=value_of(operands[2]))
        if spec.fmt is InstrFormat.B:
            need(3)
            return pc_relative(mnemonic, reg(operands[0]), reg(operands[1]),
                               operands[2])
        if spec.fmt is InstrFormat.U:
            need(2)
            return simple(mnemonic, rd=reg(operands[0]),
                          imm=value_of(operands[1]))
        if spec.fmt is InstrFormat.J:
            need(2)
            return pc_relative(mnemonic, reg(operands[0]), 0, operands[1])
        raise err(f"unhandled mnemonic {mnemonic!r}")


def assemble(source: str, name: str = "program",
             data_base: int = DATA_BASE) -> Program:
    """Assemble RV32IM source text into a :class:`Program`."""
    return Assembler(data_base=data_base).assemble(source, name=name)
