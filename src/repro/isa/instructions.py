"""The :class:`Instruction` value object used throughout the simulator.

An :class:`Instruction` is a decoded, semantic view of one RV32IM operation:
mnemonic plus register operands and immediate.  It knows which registers it
reads and writes, which functional units it exercises, and how to render
itself back to assembly text — everything the pipeline, the EM model, and the
workload generators need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from . import encoding
from .registers import register_name
from .spec import OPCODES, InstrClass, InstrFormat, OpSpec


@dataclass(frozen=True)
class Instruction:
    """One decoded RV32IM instruction."""

    name: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.name not in OPCODES:
            raise ValueError(f"unknown mnemonic: {self.name!r}")

    # ------------------------------------------------------------------
    # static properties
    # ------------------------------------------------------------------
    @property
    def spec(self) -> OpSpec:
        """The static :class:`OpSpec` for this mnemonic."""
        return OPCODES[self.name]

    @property
    def fmt(self) -> InstrFormat:
        """Encoding format."""
        return self.spec.fmt

    @property
    def cls(self) -> InstrClass:
        """Coarse semantic class (ALU / SHIFT / MULDIV / ...)."""
        return self.spec.cls

    @property
    def is_load(self) -> bool:
        return self.cls is InstrClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.cls is InstrClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.cls is InstrClass.BRANCH

    @property
    def is_jump(self) -> bool:
        return self.cls is InstrClass.JUMP

    @property
    def is_muldiv(self) -> bool:
        return self.cls is InstrClass.MULDIV

    @property
    def is_control_flow(self) -> bool:
        """True for any instruction that may redirect the PC."""
        return self.is_branch or self.is_jump

    @property
    def is_nop(self) -> bool:
        """True for the canonical NOP encoding ``addi x0, x0, 0``."""
        return (self.name == "addi" and self.rd == 0 and self.rs1 == 0
                and self.imm == 0)

    # ------------------------------------------------------------------
    # register usage
    # ------------------------------------------------------------------
    @property
    def source_registers(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (may repeat)."""
        fmt = self.fmt
        if fmt is InstrFormat.R:
            return (self.rs1, self.rs2)
        if fmt in (InstrFormat.S, InstrFormat.B):
            return (self.rs1, self.rs2)
        if fmt is InstrFormat.I:
            if self.name in ("ecall", "ebreak", "fence"):
                return ()
            return (self.rs1,)
        return ()  # U and J formats read no registers

    @property
    def destination_register(self) -> Optional[int]:
        """Architectural register written, or None (x0 counts as None)."""
        fmt = self.fmt
        if fmt in (InstrFormat.S, InstrFormat.B):
            return None
        if self.name in ("ecall", "ebreak", "fence"):
            return None
        return self.rd if self.rd != 0 else None

    # ------------------------------------------------------------------
    # encoding / rendering
    # ------------------------------------------------------------------
    def encode(self) -> int:
        """Encode to the 32-bit machine word."""
        return encoding.encode(self.name, rd=self.rd, rs1=self.rs1,
                               rs2=self.rs2, imm=self.imm)

    @classmethod
    def decode(cls, word: int) -> "Instruction":
        """Decode a 32-bit machine word."""
        fields = encoding.decode(word)
        return cls(**fields)

    def to_asm(self) -> str:
        """Render canonical assembly text (ABI register names)."""
        rd, rs1, rs2 = (register_name(self.rd), register_name(self.rs1),
                        register_name(self.rs2))
        fmt = self.fmt
        if self.is_nop:
            return "nop"
        if self.name in ("ecall", "ebreak"):
            return self.name
        if self.name == "fence":
            return "fence"
        if fmt is InstrFormat.R:
            return f"{self.name} {rd}, {rs1}, {rs2}"
        if self.name in ("slli", "srli", "srai"):
            return f"{self.name} {rd}, {rs1}, {self.imm}"
        if self.is_load or self.name == "jalr":
            return f"{self.name} {rd}, {self.imm}({rs1})"
        if fmt is InstrFormat.I:
            return f"{self.name} {rd}, {rs1}, {self.imm}"
        if fmt is InstrFormat.S:
            return f"{self.name} {rs2}, {self.imm}({rs1})"
        if fmt is InstrFormat.B:
            return f"{self.name} {rs1}, {rs2}, {self.imm}"
        if fmt is InstrFormat.U:
            return f"{self.name} {rd}, {self.imm}"
        if fmt is InstrFormat.J:
            return f"{self.name} {rd}, {self.imm}"
        raise AssertionError(f"unhandled format {fmt}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_asm()


NOP = Instruction("addi", rd=0, rs1=0, imm=0)
"""The canonical RISC-V NOP (``addi x0, x0, 0``), the paper's baseline."""
