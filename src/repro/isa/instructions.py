"""The :class:`Instruction` value object used throughout the simulator.

An :class:`Instruction` is a decoded, semantic view of one RV32IM operation:
mnemonic plus register operands and immediate.  It knows which registers it
reads and writes, which functional units it exercises, and how to render
itself back to assembly text — everything the pipeline, the EM model, and the
workload generators need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from . import encoding
from .registers import register_name
from .spec import OPCODES, InstrClass, InstrFormat, OpSpec

@dataclass(frozen=True)
class Instruction:
    """One decoded RV32IM instruction."""

    name: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.name not in OPCODES:
            raise ValueError(f"unknown mnemonic: {self.name!r}")
        self._derive()

    # ------------------------------------------------------------------
    # derived statics
    # ------------------------------------------------------------------
    # Every static derivation (spec, class predicates, register usage)
    # is computed once in __post_init__ and stored as a plain instance
    # attribute via object.__setattr__: an Instruction is frozen, its
    # derivations are pure, and the pipeline reads them millions of
    # times per campaign — a dict lookup beats a property call several
    # times over.  __getstate__ strips them so pickles carry only the
    # declared fields; __setstate__ re-derives on load.

    # Attributes set by _derive (not dataclass fields): spec, fmt, cls,
    # is_load, is_store, is_branch, is_jump, is_muldiv, is_control_flow,
    # is_nop, source_registers, destination_register, unique_sources.

    def _derive(self) -> None:
        """Precompute the static derivations as plain attributes."""
        setattr_ = object.__setattr__
        spec = OPCODES[self.name]
        cls = spec.cls
        fmt = spec.fmt
        setattr_(self, "spec", spec)
        setattr_(self, "fmt", fmt)
        setattr_(self, "cls", cls)
        is_branch = cls is InstrClass.BRANCH
        is_jump = cls is InstrClass.JUMP
        setattr_(self, "is_load", cls is InstrClass.LOAD)
        setattr_(self, "is_store", cls is InstrClass.STORE)
        setattr_(self, "is_branch", is_branch)
        setattr_(self, "is_jump", is_jump)
        setattr_(self, "is_muldiv", cls is InstrClass.MULDIV)
        setattr_(self, "is_control_flow", is_branch or is_jump)
        setattr_(self, "is_nop", self.name == "addi" and self.rd == 0
                 and self.rs1 == 0 and self.imm == 0)
        if fmt in (InstrFormat.R, InstrFormat.S, InstrFormat.B):
            sources: Tuple[int, ...] = (self.rs1, self.rs2)
        elif fmt is InstrFormat.I and self.name not in ("ecall", "ebreak",
                                                        "fence"):
            sources = (self.rs1,)
        else:
            sources = ()  # U and J formats read no registers
        setattr_(self, "source_registers", sources)
        if fmt in (InstrFormat.S, InstrFormat.B) or                 self.name in ("ecall", "ebreak", "fence"):
            dest: Optional[int] = None
        else:
            dest = self.rd if self.rd != 0 else None
        setattr_(self, "destination_register", dest)
        setattr_(self, "unique_sources", tuple(sorted(set(sources))))

    # ------------------------------------------------------------------
    # encoding / rendering
    # ------------------------------------------------------------------
    def encode(self) -> int:
        """Encode to the 32-bit machine word (memoized per instance)."""
        word = self.__dict__.get("_word")
        if word is None:
            word = encoding.encode(self.name, rd=self.rd, rs1=self.rs1,
                                   rs2=self.rs2, imm=self.imm)
            object.__setattr__(self, "_word", word)
        return word

    def __getstate__(self):
        """Pickle only the declared fields, never the derived statics."""
        return {"name": self.name, "rd": self.rd, "rs1": self.rs1,
                "rs2": self.rs2, "imm": self.imm}

    def __setstate__(self, state):
        """Restore the declared fields, then recompute the derivations."""
        for key, value in state.items():
            object.__setattr__(self, key, value)
        self._derive()

    @classmethod
    def decode(cls, word: int) -> "Instruction":
        """Decode a 32-bit machine word."""
        fields = encoding.decode(word)
        return cls(**fields)

    def to_asm(self) -> str:
        """Render canonical assembly text (ABI register names)."""
        rd, rs1, rs2 = (register_name(self.rd), register_name(self.rs1),
                        register_name(self.rs2))
        fmt = self.fmt
        if self.is_nop:
            return "nop"
        if self.name in ("ecall", "ebreak"):
            return self.name
        if self.name == "fence":
            return "fence"
        if fmt is InstrFormat.R:
            return f"{self.name} {rd}, {rs1}, {rs2}"
        if self.name in ("slli", "srli", "srai"):
            return f"{self.name} {rd}, {rs1}, {self.imm}"
        if self.is_load or self.name == "jalr":
            return f"{self.name} {rd}, {self.imm}({rs1})"
        if fmt is InstrFormat.I:
            return f"{self.name} {rd}, {rs1}, {self.imm}"
        if fmt is InstrFormat.S:
            return f"{self.name} {rs2}, {self.imm}({rs1})"
        if fmt is InstrFormat.B:
            return f"{self.name} {rs1}, {rs2}, {self.imm}"
        if fmt is InstrFormat.U:
            return f"{self.name} {rd}, {self.imm}"
        if fmt is InstrFormat.J:
            return f"{self.name} {rd}, {self.imm}"
        raise AssertionError(f"unhandled format {fmt}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_asm()


NOP = Instruction("addi", rd=0, rs1=0, imm=0)
"""The canonical RISC-V NOP (``addi x0, x0, 0``), the paper's baseline."""
