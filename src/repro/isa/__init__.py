"""RV32IM instruction-set substrate: spec, codec, assembler, programs."""

from .assembler import Assembler, AssemblerError, assemble
from .disassembler import disassemble, disassemble_word
from .encoding import decode, encode, sign_extend, to_unsigned
from .instructions import NOP, Instruction
from .program import DATA_BASE, TEXT_BASE, Program, store_words
from .registers import NUM_REGISTERS, XLEN, register_index, register_name
from .spec import ALL_MNEMONICS, OPCODES, InstrClass, InstrFormat, OpSpec

__all__ = [
    "ALL_MNEMONICS",
    "Assembler",
    "AssemblerError",
    "DATA_BASE",
    "Instruction",
    "InstrClass",
    "InstrFormat",
    "NOP",
    "NUM_REGISTERS",
    "OPCODES",
    "OpSpec",
    "Program",
    "TEXT_BASE",
    "XLEN",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_word",
    "encode",
    "register_index",
    "register_name",
    "sign_extend",
    "store_words",
    "to_unsigned",
]
