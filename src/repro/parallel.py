"""Supervised, deterministic worker-pool fan-out for campaign workloads.

Model building, TVLA, and SAVAT are campaign-shaped: thousands of
independent (program -> capture -> amplitudes) items.  This module owns
the one sanctioned way to fan those items out over processes, and — new
with the supervised runtime — the machinery that keeps an hours-long
campaign alive when individual items misbehave:

* **ordered** — results always come back in input order, regardless of
  worker scheduling;
* **deterministic** — callers seed *per item* (see :func:`spawn_seed`),
  never from a shared stream, so the result of item ``i`` is independent
  of worker count and scheduling; the supervision ledger is equally
  scheduling-independent (an innocent item resubmitted because a
  *neighbor* hung or crashed is never charged an attempt);
* **supervised** — :class:`SupervisedPool` submits items individually
  (``apply_async`` plus a deadline ledger) so it can enforce a per-item
  wall-clock timeout, detect crashed workers (dead pool /
  ``BrokenPipeError``) and rebuild the pool, retry failed items with
  seeded backoff, and quarantine items that exhaust their retry budget
  instead of aborting the campaign — returning a typed per-item
  :class:`ItemOutcome` ledger (``ok | retried | timeout | quarantined``)
  alongside the results;
* **resumable** — pass a
  :class:`~repro.robustness.checkpoint.CheckpointJournal` plus a
  ``key_for`` callback and every completed item is journaled; a resumed
  run skips journaled items bit-identically;
* **degradable** — without a timeout or journal, ``workers=1`` (the
  default everywhere) never touches ``multiprocessing``: it runs the
  plain in-process loop, bit-identical to not using this module at all,
  which is also the fallback when a pool cannot be created (restricted
  sandboxes).

The worker function and its items must be picklable (top-level
functions, dataclasses, numpy arrays).  Per-worker state that is
expensive to pickle per item (a
:class:`~repro.hardware.device.HardwareDevice`, a trained model) goes
through ``initializer``/``initargs`` and lives in the worker's module
globals.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar)

import numpy as np

from .ipc import SharedArrayArena, export_value
from .observability.tracer import (create_spool, flush_worker_records,
                                   merge_spool, reset_flush_baseline)
from .profiling import get_profiler, monotonic
from .robustness.errors import CampaignError, ConfigurationError

__all__ = ["resolve_workers", "parallel_map", "spawn_seed",
           "supervised_map", "retry_backoff", "SupervisedPool",
           "SupervisionPolicy", "ItemOutcome", "CampaignLedger",
           "OUTCOME_OK", "OUTCOME_RETRIED", "OUTCOME_TIMEOUT",
           "OUTCOME_QUARANTINED"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

MAX_WORKERS = 64
"""Upper clamp on worker processes (beyond this, fork cost dominates)."""

OUTCOME_OK = "ok"
"""Ledger status: the item succeeded on its first charged attempt."""

OUTCOME_RETRIED = "retried"
"""Ledger status: the item succeeded after at least one retry."""

OUTCOME_TIMEOUT = "timeout"
"""Ledger status: quarantined, and the final failure was a deadline."""

OUTCOME_QUARANTINED = "quarantined"
"""Ledger status: quarantined after exhausting ``max_item_retries``."""

RETRY_STREAM = 0x5EED
"""The :func:`spawn_seed` stream reserved for retry-backoff jitter
(far above the small stream numbers campaign items use for their own
RNG consumers, so backoff draws can never collide with capture noise)."""


def resolve_workers(workers: object) -> int:
    """Normalize a worker-count request to an integer >= 1.

    Accepts an int, a numeric string, or ``"auto"`` (one worker per
    available CPU).  Values below 1 are clamped to 1; values above
    :data:`MAX_WORKERS` are clamped down.  Anything else — a
    non-numeric string like ``--workers=fast`` — raises
    :class:`~repro.robustness.errors.ConfigurationError` naming the
    offending value (exit code 16 from the CLI).
    """
    if workers in ("auto", None):
        count = os.cpu_count() or 1
    else:
        try:
            count = int(workers)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"invalid worker count {workers!r}: expected a positive "
                f"integer or 'auto'")
    return max(1, min(MAX_WORKERS, count))


def spawn_seed(base_seed: int, index: int,
               stream: int = 0) -> np.random.Generator:
    """Per-item RNG keyed on ``(base_seed, stream, index)``.

    The standard recipe for deterministic parallelism here: every
    campaign item derives its own generator from the campaign seed and
    its position, so captures are reproducible and independent of how
    items land on workers.  ``stream`` separates independent consumers
    of the same campaign item (e.g. the device's scope RNG at stream 0
    and its fault injector at stream 1) without any risk of collision.
    """
    return np.random.default_rng([int(base_seed), int(stream), int(index)])


def retry_backoff(seed: int, index: int, retry_index: int,
                  base: float = 0.05, cap: float = 1.0) -> float:
    """Deterministic exponential backoff with seeded jitter (seconds).

    Retry ``retry_index`` (0-based) of item ``index`` waits
    ``base * 2**retry_index`` scaled by a jitter factor in ``[0.5,
    1.5)`` drawn from ``spawn_seed(seed, index, RETRY_STREAM)`` —
    the same recipe :class:`~repro.robustness.retry.RetryPolicy` uses,
    keyed per item so two quarreling items never synchronize, and a
    pure function of ``(seed, index, retry_index)`` so the supervision
    ledger stays reproducible.
    """
    draws = spawn_seed(seed, index, stream=RETRY_STREAM).random(
        retry_index + 1)
    jitter = 0.5 + float(draws[retry_index])
    return float(min(cap, base * (2.0 ** retry_index) * jitter))


@dataclass
class SupervisionPolicy:
    """Knobs governing one supervised fan-out.

    ``timeout`` is the per-item wall-clock deadline in seconds (``None``
    disables deadlines — and with it the pool-even-at-one-worker mode
    that deadline enforcement needs).  ``max_item_retries`` bounds how
    many *failed* attempts one item may accumulate (crash, timeout, or
    exception all count) before it is quarantined; the first attempt is
    free, so an item sees at most ``max_item_retries + 1`` attempts.
    ``sleep`` is the backoff actuator: ``None`` (the default) records
    the deterministic wait in the ledger without actually sleeping —
    the simulation bench gains nothing from waiting, exactly like
    :class:`~repro.robustness.retry.RetryPolicy` — while bench code
    driving real hardware passes ``time.sleep``.
    """

    timeout: Optional[float] = None
    max_item_retries: int = 2
    seed: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    sleep: Optional[Callable[[float], None]] = None
    poll_interval: float = 0.01

    def backoff(self, index: int, retry_index: int) -> float:
        """Backoff for retry ``retry_index`` of item ``index``."""
        return retry_backoff(self.seed, index, retry_index,
                             base=self.backoff_base,
                             cap=self.backoff_cap)


@dataclass
class ItemOutcome:
    """Per-item supervision record (one ledger row).

    ``status`` is one of :data:`OUTCOME_OK`, :data:`OUTCOME_RETRIED`,
    :data:`OUTCOME_TIMEOUT`, :data:`OUTCOME_QUARANTINED`.  ``attempts``
    counts *charged* attempts only — an innocent item resubmitted
    because the pool was rebuilt under it keeps its count, which is
    what makes the ledger independent of worker count.  ``waited`` is
    the total deterministic backoff attributed to the item (recorded
    even when the policy does not actually sleep); ``resumed`` marks
    items served from a checkpoint journal without running at all.
    """

    index: int
    status: str = OUTCOME_OK
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: List[str] = field(default_factory=list)
    waited: float = 0.0
    resumed: bool = False

    def to_dict(self) -> dict:
        """JSON-ready row (benchmark reports embed these)."""
        return {"index": self.index, "status": self.status,
                "attempts": self.attempts, "retries": self.retries,
                "timeouts": self.timeouts, "crashes": self.crashes,
                "errors": list(self.errors), "waited": self.waited,
                "resumed": self.resumed}


@dataclass
class CampaignLedger:
    """Typed outcome ledger for one supervised fan-out.

    Indexable alongside the results list: ``outcomes[i]`` describes how
    ``results[i]`` was produced (or why it is ``None``).
    """

    outcomes: List[ItemOutcome] = field(default_factory=list)
    pool_rebuilds: int = 0

    def counts(self) -> Dict[str, int]:
        """Items per final status (zero-filled, fixed key order)."""
        table = {OUTCOME_OK: 0, OUTCOME_RETRIED: 0,
                 OUTCOME_TIMEOUT: 0, OUTCOME_QUARANTINED: 0}
        for outcome in self.outcomes:
            table[outcome.status] += 1
        return table

    @property
    def quarantined(self) -> List[int]:
        """Indices whose result slot is ``None`` (lost items)."""
        return [outcome.index for outcome in self.outcomes
                if outcome.status in (OUTCOME_TIMEOUT,
                                      OUTCOME_QUARANTINED)]

    @property
    def resumed(self) -> List[int]:
        """Indices served from the checkpoint journal."""
        return [outcome.index for outcome in self.outcomes
                if outcome.resumed]

    @property
    def complete(self) -> bool:
        """True when every item produced a result."""
        return not self.quarantined

    def summary(self) -> str:
        """One-line human-readable digest of the run."""
        counts = self.counts()
        parts = [f"{len(self.outcomes)} items"]
        parts += [f"{status}={count}"
                  for status, count in counts.items() if count]
        if self.resumed:
            parts.append(f"resumed={len(self.resumed)}")
        if self.pool_rebuilds:
            parts.append(f"pool_rebuilds={self.pool_rebuilds}")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# worker-side trampoline
# ---------------------------------------------------------------------------
# Installed once per worker process by the pool initializer.  The start
# queue is how the parent attributes a SIGKILL'd worker to the item it
# was running: every call announces (pid, index) before doing any work.
_SUPERVISED_STATE: dict = {}


def _supervised_init(queue: object, function: Callable,
                     initializer: Optional[Callable],
                     initargs: tuple,
                     spool: Optional[str] = None,
                     arena_prefix: Optional[str] = None) -> None:
    """Install the start-report queue + user initializer in a worker.

    ``spool`` (set when the parent is tracing) is the directory this
    worker appends its span/metric records to; the flush baseline is
    reset first so recordings inherited from the parent at fork time —
    including after a mid-campaign pool rebuild — are never re-spooled.
    ``arena_prefix`` (set when the parent opened a
    :class:`~repro.ipc.SharedArrayArena`) turns on shared-memory export
    of large result arrays.
    """
    _SUPERVISED_STATE["queue"] = queue
    _SUPERVISED_STATE["function"] = function
    _SUPERVISED_STATE["spool"] = spool
    _SUPERVISED_STATE["arena"] = arena_prefix
    if spool is not None:
        reset_flush_baseline()
    if initializer is not None:
        initializer(*initargs)


def _supervised_call(index: int, item: object) -> object:
    """Announce (pid, index) on the start queue, then run the item.

    With a spool configured, the worker's new spans and metric deltas
    are flushed after the item — success or failure — so the parent
    can merge them even when the attempt raised.
    """
    queue = _SUPERVISED_STATE.get("queue")
    if queue is not None:
        queue.put((os.getpid(), index))
    spool = _SUPERVISED_STATE.get("spool")
    arena_prefix = _SUPERVISED_STATE.get("arena")
    if spool is None:
        return _export(_SUPERVISED_STATE["function"](item), arena_prefix)
    try:
        return _export(_SUPERVISED_STATE["function"](item), arena_prefix)
    finally:
        flush_worker_records(spool, index)


def _export(value: object, arena_prefix: Optional[str]) -> object:
    """Route a worker result through the shared-memory arena if open."""
    if arena_prefix is None:
        return value
    return export_value(value, arena_prefix)


@dataclass
class _InFlight:
    """One outstanding ``apply_async`` submission."""

    handle: object
    deadline: Optional[float]


class SupervisedPool:
    """Crash-safe, deadline-enforcing, resumable campaign fan-out.

    The supervised replacement for a bare ``pool.map``: items are
    submitted individually with ``apply_async`` and tracked in a
    deadline ledger, so one poisoned item, hung worker, or SIGKILL'd
    child costs exactly that item's retry budget — never the campaign.

    Mechanics per poll cycle:

    1. **reap** ready results (successes are journaled immediately);
    2. **attribute crashes** — workers announce ``(pid, index)`` on a
       start queue before running an item, so a worker that vanishes
       (its pid left the pool's worker set) indicts exactly the item it
       owned; the pool's own maintenance replaces the dead process, and
       only the indicted item is charged a failed attempt;
    3. **enforce deadlines** — an expired item is charged a timeout and
       the pool is torn down and rebuilt (the only way to kill a stuck
       worker); in-flight *innocents* are resubmitted without being
       charged, keeping the ledger independent of scheduling;
    4. **retry or quarantine** — a failed item re-queues with
       deterministic seeded backoff until ``max_item_retries`` is
       exhausted, then its slot is ``None`` and its ledger row says
       ``timeout`` or ``quarantined``.

    Submission failures on a dead pool (``BrokenPipeError`` & friends)
    also trigger a rebuild.  Without a timeout the fan-out degrades to
    the legacy in-process loop at one effective worker — bit-identical
    to the pre-supervision code path.
    """

    def __init__(self, workers: object = 1,
                 initializer: Optional[Callable] = None,
                 initargs: tuple = (),
                 policy: Optional[SupervisionPolicy] = None,
                 transport: str = "auto"):
        self.workers = resolve_workers(workers)
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy or SupervisionPolicy()
        if transport not in ("auto", "shared", "codec"):
            raise ConfigurationError(
                f"invalid transport {transport!r}: expected 'auto', "
                f"'shared', or 'codec'")
        self.transport = transport

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def map(self, function: Callable[[_ItemT], _ResultT],
            items: Sequence[_ItemT],
            journal: object = None,
            key_for: Optional[Callable[[int, _ItemT], str]] = None,
            propagate: bool = False
            ) -> Tuple[List[Optional[_ResultT]], CampaignLedger]:
        """Run every item; return ``(results, ledger)`` in input order.

        Quarantined items leave ``None`` in their result slot unless
        ``propagate`` is set, in which case the first exhausted item
        re-raises its exception (or a
        :class:`~repro.robustness.errors.CampaignError` for timeouts
        and crashes) — the legacy :func:`parallel_map` contract.

        With ``journal`` (a
        :class:`~repro.robustness.checkpoint.CheckpointJournal`) and
        ``key_for`` (mapping ``(index, item)`` to a stable content
        key), completed items are checkpointed as they finish and
        journaled items are served from disk without running.
        """
        items = list(items)
        if journal is not None and key_for is None:
            raise ConfigurationError(
                "supervised map: a checkpoint journal needs a key_for "
                "callback to derive stable item keys")
        outcomes = [ItemOutcome(index=index)
                    for index in range(len(items))]
        results: List[Optional[_ResultT]] = [None] * len(items)
        ledger = CampaignLedger(outcomes=outcomes)
        profiler = get_profiler()
        keys: Optional[List[str]] = None
        pending: List[int] = list(range(len(items)))
        if journal is not None:
            keys = [key_for(index, item)
                    for index, item in enumerate(items)]
            fresh = []
            for index in pending:
                if keys[index] in journal:
                    results[index] = journal.lookup(keys[index])
                    outcomes[index].resumed = True
                    profiler.count("supervise.resumed")
                else:
                    fresh.append(index)
            pending = fresh
        if not pending:
            return results, ledger

        effective = min(self.workers, len(pending), os.cpu_count() or 1)
        use_pool = self.policy.timeout is not None or \
            (effective > 1 and len(pending) > 1)
        if use_pool:
            # span/metric spool for tracing across the process boundary
            # (None while the tracer is disabled — zero overhead)
            spool = create_spool()
            # shared-memory result channel: large arrays cross the
            # process boundary as segment refs instead of pickle bytes
            # (transport="codec" or unusable shared memory -> pipe)
            arena = None
            if self.transport != "codec":
                arena = SharedArrayArena.create_if_available()
                if arena is None and self.transport == "shared":
                    raise ConfigurationError(
                        "transport='shared' requested but shared memory "
                        "is unavailable here (or REPRO_NO_SHM is set)")
            pool_state = self._start_pool(
                function, max(1, effective), spool,
                arena.prefix if arena is not None else None)
            if pool_state is None:
                merge_spool(spool)
                if arena is not None:
                    arena.close()
                    arena = None
                use_pool = False
        if use_pool:
            context, pool, queue = pool_state
            try:
                self._run_pool(context, pool, queue, function, items,
                               pending, results, outcomes, ledger,
                               journal, keys, propagate,
                               max(1, effective), profiler, spool,
                               arena)
            finally:
                merge_spool(spool)
                if arena is not None:
                    arena.close()
        else:
            self._run_serial(function, items, pending, results,
                             outcomes, journal, keys, propagate,
                             profiler)
        return results, ledger

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------
    def _journal_success(self, journal: object,
                         keys: Optional[List[str]], index: int,
                         value: object, profiler: object) -> None:
        if journal is not None and keys is not None:
            journal.record(keys[index], index, value)
            profiler.count("supervise.checkpointed")

    def _note_retry(self, outcome: ItemOutcome,
                    profiler: object) -> None:
        wait = self.policy.backoff(outcome.index, outcome.retries)
        outcome.retries += 1
        outcome.waited += wait
        profiler.count("supervise.retries")
        if self.policy.sleep is not None:
            self.policy.sleep(wait)

    def _register_failure(self, outcome: ItemOutcome, kind: str,
                          message: str, profiler: object) -> bool:
        """Charge one failed attempt; True when the item may retry."""
        outcome.failures += 1
        outcome.errors.append(message)
        if kind == "timeout":
            outcome.timeouts += 1
            profiler.count("supervise.timeouts")
        elif kind == "crash":
            outcome.crashes += 1
            profiler.count("supervise.crashes")
        else:
            profiler.count("supervise.failures")
        if outcome.failures <= self.policy.max_item_retries:
            self._note_retry(outcome, profiler)
            return True
        outcome.status = OUTCOME_TIMEOUT if kind == "timeout" \
            else OUTCOME_QUARANTINED
        profiler.count("supervise.quarantined")
        return False

    def _finish(self, outcome: ItemOutcome) -> None:
        outcome.status = OUTCOME_RETRIED if outcome.retries \
            else OUTCOME_OK

    # ------------------------------------------------------------------
    # serial path (no timeout enforcement possible in-process)
    # ------------------------------------------------------------------
    def _run_serial(self, function: Callable, items: list,
                    pending: List[int], results: list,
                    outcomes: List[ItemOutcome], journal: object,
                    keys: Optional[List[str]], propagate: bool,
                    profiler: object) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for index in pending:
            outcome = outcomes[index]
            while True:
                outcome.attempts += 1
                try:
                    value = function(items[index])
                except Exception as exc:
                    message = f"{type(exc).__name__}: {exc}"
                    if self._register_failure(outcome, "error", message,
                                              profiler):
                        continue
                    if propagate:
                        # repro: allow[E601] deliberate re-raise of the
                        # worker's original exception; converting here
                        # would erase the type callers dispatch on.
                        raise
                    break
                results[index] = value
                self._finish(outcome)
                self._journal_success(journal, keys, index, value,
                                      profiler)
                break

    # ------------------------------------------------------------------
    # pool path
    # ------------------------------------------------------------------
    def _start_pool(self, function: Callable, processes: int,
                    spool: Optional[str] = None,
                    arena_prefix: Optional[str] = None):
        """Fork a supervised pool; ``None`` when the sandbox forbids it."""
        try:
            import multiprocessing
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:                    # pragma: no cover
                context = multiprocessing.get_context("spawn")
            queue = context.SimpleQueue()
            pool = context.Pool(
                processes=processes,
                initializer=_supervised_init,
                initargs=(queue, function, self.initializer,
                          self.initargs, spool, arena_prefix))
        except (ImportError, OSError):            # pragma: no cover
            # restricted environments (no /dev/shm, fork disabled):
            # degrade to the in-process loop
            return None
        return context, pool, queue

    def _run_pool(self, context: object, pool: object, queue: object,
                  function: Callable, items: list, pending: List[int],
                  results: list, outcomes: List[ItemOutcome],
                  ledger: CampaignLedger, journal: object,
                  keys: Optional[List[str]], propagate: bool,
                  processes: int, profiler: object,
                  spool: Optional[str] = None,
                  arena: Optional[SharedArrayArena] = None) -> None:
        timeout = self.policy.timeout
        # waiting entries are (index, charge): innocent resubmissions
        # after a rebuild carry charge=False so the ledger never depends
        # on which neighbor happened to hang
        waiting: deque = deque((index, True) for index in pending)
        inflight: Dict[int, _InFlight] = {}
        owner: Dict[int, int] = {}  # worker pid -> item it is running

        def drain_started() -> None:
            while not queue.empty():
                pid, index = queue.get()
                owner[pid] = index

        def rebuild_pool() -> None:
            nonlocal pool
            drain_started()
            pool.terminate()
            pool.join()
            owner.clear()
            ledger.pool_rebuilds += 1
            profiler.count("supervise.rebuilds")
            pool = context.Pool(
                processes=processes,
                initializer=_supervised_init,
                initargs=(queue, function, self.initializer,
                          self.initargs, spool,
                          arena.prefix if arena is not None else None))

        def submit(index: int, charge: bool) -> None:
            if charge:
                outcomes[index].attempts += 1
            deadline = None if timeout is None \
                else monotonic() + timeout
            try:
                handle = pool.apply_async(_supervised_call,
                                          (index, items[index]))
            except (OSError, ValueError, RuntimeError):
                # dead pool (BrokenPipeError on the task queue, or the
                # pool object already torn down): rebuild and resubmit
                rebuild_pool()
                handle = pool.apply_async(_supervised_call,
                                          (index, items[index]))
            inflight[index] = _InFlight(handle=handle, deadline=deadline)

        def fail(index: int, kind: str, exc: Optional[BaseException]
                 ) -> None:
            if kind == "timeout":
                message = (f"attempt exceeded the {timeout:g}s per-item "
                           f"deadline")
            elif kind == "crash":
                message = "worker process died while running this item"
            else:
                message = f"{type(exc).__name__}: {exc}"
            if self._register_failure(outcomes[index], kind, message,
                                      profiler):
                waiting.append((index, True))
                return
            if propagate:
                if kind == "error":
                    raise exc
                raise CampaignError(
                    f"item {index} {message} "
                    f"({outcomes[index].attempts} attempts)",
                    quarantined=[index])

        try:
            while waiting or inflight:
                while waiting and len(inflight) < processes:
                    index, charge = waiting.popleft()
                    submit(index, charge)
                progressed = False

                # 1. reap completed submissions
                for index in [idx for idx, entry in inflight.items()
                              if entry.handle.ready()]:
                    entry = inflight.pop(index)
                    progressed = True
                    drain_started()
                    for pid in [pid for pid, owned in owner.items()
                                if owned == index]:
                        del owner[pid]
                    try:
                        value = entry.handle.get()
                        # claim shared-memory refs back into ordinary
                        # arrays *before* journaling, so checkpoint
                        # bytes are identical on every transport
                        if arena is not None:
                            value = arena.claim(value)
                    except Exception as exc:
                        fail(index, "error", exc)
                    else:
                        results[index] = value
                        self._finish(outcomes[index])
                        self._journal_success(journal, keys, index,
                                              value, profiler)

                # 2. attribute crashed workers to the items they owned
                drain_started()
                workers = list(getattr(pool, "_pool", []))
                if workers:
                    live = {worker.pid for worker in workers
                            if worker.exitcode is None}
                    for pid in [pid for pid in owner
                                if pid not in live]:
                        victim = owner.pop(pid)
                        if victim in inflight:
                            del inflight[victim]
                            progressed = True
                            fail(victim, "crash", None)

                # 3. enforce per-item deadlines; a rebuild is the only
                # way to kill a stuck worker, so in-flight innocents are
                # resubmitted uncharged afterwards
                if timeout is not None and inflight:
                    now = monotonic()
                    expired = [index for index, entry
                               in inflight.items()
                               if entry.deadline is not None
                               and now >= entry.deadline]
                    if expired:
                        progressed = True
                        for index in expired:
                            del inflight[index]
                            fail(index, "timeout", None)
                        innocents = list(inflight)
                        inflight.clear()
                        rebuild_pool()
                        for index in reversed(innocents):
                            waiting.appendleft((index, False))

                if not progressed and (waiting or inflight):
                    time.sleep(self.policy.poll_interval)
        finally:
            pool.terminate()
            pool.join()


def supervised_map(function: Callable[[_ItemT], _ResultT],
                   items: Sequence[_ItemT],
                   workers: object = 1,
                   initializer: Optional[Callable] = None,
                   initargs: tuple = (),
                   timeout: Optional[float] = None,
                   max_item_retries: int = 2,
                   seed: int = 0,
                   journal: object = None,
                   key_for: Optional[Callable[[int, _ItemT], str]] = None,
                   sleep: Optional[Callable[[float], None]] = None,
                   transport: str = "auto"
                   ) -> Tuple[List[Optional[_ResultT]], CampaignLedger]:
    """One-call supervised fan-out; returns ``(results, ledger)``.

    The campaign entry point: quarantined items leave ``None`` slots
    and a ledger row explaining why, instead of aborting the run.  See
    :class:`SupervisedPool` for the supervision mechanics and
    :class:`SupervisionPolicy` for the knob semantics.  ``transport``
    selects the result channel for pool runs: ``"auto"`` (default)
    ships large arrays through a :class:`~repro.ipc.SharedArrayArena`
    when shared memory is usable, ``"codec"`` forces the legacy
    pickle/codec pipe, ``"shared"`` requires shared memory.
    """
    pool = SupervisedPool(
        workers=workers, initializer=initializer, initargs=initargs,
        policy=SupervisionPolicy(timeout=timeout,
                                 max_item_retries=max_item_retries,
                                 seed=seed, sleep=sleep),
        transport=transport)
    return pool.map(function, items, journal=journal, key_for=key_for)


def parallel_map(function: Callable[[_ItemT], _ResultT],
                 items: Sequence[_ItemT],
                 workers: object = 1,
                 initializer: Optional[Callable] = None,
                 initargs: tuple = (),
                 chunk_size: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_item_retries: int = 0) -> List[_ResultT]:
    """Map ``function`` over ``items``, optionally across processes.

    The strict legacy contract on top of :class:`SupervisedPool`:
    results come back in input order and any item that exhausts its
    retry budget (0 by default) re-raises — the worker's exception for
    failures, :class:`~repro.robustness.errors.CampaignError` for
    timeouts and crashes.  With ``workers <= 1`` (or one item, or no
    usable ``multiprocessing``) and no ``timeout``, this runs
    in-process: the ``initializer`` is invoked once and the loop is a
    plain ``for`` — bit-identical to not using this module at all.
    ``chunk_size`` is accepted for backward compatibility and ignored:
    supervision requires per-item submission.
    """
    del chunk_size  # supervised submission is per item by design
    pool = SupervisedPool(
        workers=workers, initializer=initializer, initargs=initargs,
        policy=SupervisionPolicy(timeout=timeout,
                                 max_item_retries=max_item_retries))
    results, _ = pool.map(function, items, propagate=True)
    return results
