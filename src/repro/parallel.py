"""Deterministic chunked worker-pool fan-out for campaign workloads.

Model building, TVLA, and SAVAT are campaign-shaped: thousands of
independent (program -> capture -> amplitudes) items.  This module owns
the one sanctioned way to fan those items out over processes:

* **ordered** — results always come back in input order, regardless of
  worker scheduling;
* **deterministic** — callers seed *per item* (see
  :func:`spawn_seed`), never from a shared stream, so the result of item
  ``i`` is independent of worker count and chunk layout;
* **degradable** — ``workers=1`` (the default everywhere) never touches
  ``multiprocessing``; it runs the plain in-process loop, which is also
  the fallback when a pool cannot be created (restricted sandboxes).

The worker function and its items must be picklable (top-level
functions, dataclasses, numpy arrays).  Per-worker state that is
expensive to pickle per item (a :class:`~repro.hardware.device.HardwareDevice`,
a trained model) goes through ``initializer``/``initargs`` and lives in
the worker's module globals.
"""

from __future__ import annotations

import math
import os
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["resolve_workers", "parallel_map", "spawn_seed"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

MAX_WORKERS = 64
"""Upper clamp on worker processes (beyond this, fork cost dominates)."""


def resolve_workers(workers) -> int:
    """Normalize a worker-count request to an integer >= 1.

    Accepts an int, a numeric string, or ``"auto"`` (one worker per
    available CPU).  Values below 1 are clamped to 1; values above
    :data:`MAX_WORKERS` are clamped down.
    """
    if workers in ("auto", None):
        count = os.cpu_count() or 1
    else:
        count = int(workers)
    return max(1, min(MAX_WORKERS, count))


def spawn_seed(base_seed: int, index: int,
               stream: int = 0) -> np.random.Generator:
    """Per-item RNG keyed on ``(base_seed, stream, index)``.

    The standard recipe for deterministic parallelism here: every
    campaign item derives its own generator from the campaign seed and
    its position, so captures are reproducible and independent of how
    items land on workers.  ``stream`` separates independent consumers
    of the same campaign item (e.g. the device's scope RNG at stream 0
    and its fault injector at stream 1) without any risk of collision.
    """
    return np.random.default_rng([int(base_seed), int(stream), int(index)])


def _chunk_size(num_items: int, workers: int) -> int:
    """Chunk items so each worker sees a handful of batches.

    Large chunks amortize pickling; a few chunks per worker keep the
    tail balanced when per-item cost varies.
    """
    return max(1, math.ceil(num_items / (workers * 4)))


def parallel_map(function: Callable[[_ItemT], _ResultT],
                 items: Sequence[_ItemT],
                 workers: int = 1,
                 initializer: Optional[Callable] = None,
                 initargs: tuple = (),
                 chunk_size: Optional[int] = None) -> List[_ResultT]:
    """Map ``function`` over ``items``, optionally across processes.

    Results are returned in input order.  With ``workers <= 1`` (or one
    item, or no usable ``multiprocessing``), runs in-process: the
    ``initializer`` is invoked once and the loop is a plain ``for`` —
    bit-identical to not using this module at all.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return _serial_map(function, items, initializer, initargs)
    try:
        import multiprocessing
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:                        # pragma: no cover
            context = multiprocessing.get_context("spawn")
        # never run more processes than the machine has CPUs: the items
        # are CPU-bound, so extra processes only add fork + IPC overhead
        processes = min(workers, len(items), os.cpu_count() or 1)
        if processes <= 1:
            return _serial_map(function, items, initializer, initargs)
        pool = context.Pool(processes=processes,
                            initializer=initializer,
                            initargs=initargs)
    except (ImportError, OSError):                # pragma: no cover
        # restricted environments (no /dev/shm, fork disabled): degrade
        return _serial_map(function, items, initializer, initargs)
    try:
        size = chunk_size or _chunk_size(len(items), workers)
        return pool.map(function, items, chunksize=size)
    finally:
        pool.close()
        pool.join()


def _serial_map(function, items, initializer, initargs) -> list:
    """The in-process fallback: initializer once, then an ordered loop."""
    if initializer is not None:
        initializer(*initargs)
    return [function(item) for item in items]
