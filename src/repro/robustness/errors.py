"""Typed error hierarchy for the bench-to-model pipeline.

A real EMSim bench fails in distinguishable ways — the scope loses a
trigger, a capture is too dirty to use, a fit diverges, a model file on
disk is truncated — and each failure needs a different reaction (retry,
escalate, degrade, or abort with a precise message).  Every error the
reproduction raises on purpose derives from :class:`ReproError`, so the
CLI can map failure families to distinct exit codes and callers can catch
exactly the layer they can handle.

Some subclasses also derive from :class:`ValueError` where they replace
``ValueError`` raises that predate this hierarchy, so existing callers
(and tests) keep working unchanged.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base of every intentional failure in the reproduction pipeline."""

    #: process exit code used by the CLI; each subclass gets its own so
    #: scripts can branch on the failure family (argparse owns 2).
    exit_code = 10


class AcquisitionError(ReproError):
    """The bench failed to deliver a capture at all.

    Raised for trigger loss, device brown-outs, and repetition runs that
    lose too many traces to fold a reference from.
    """

    exit_code = 11


class CaptureQualityError(AcquisitionError):
    """A capture was delivered but failed the health gate.

    Carries the individual threshold violations so retry logic (and the
    operator) can see *why* the capture was rejected.
    """

    exit_code = 12

    def __init__(self, message: str, violations: Optional[list] = None):
        super().__init__(message)
        self.violations = list(violations or [])


class ConvergenceError(ReproError):
    """An iterative fit (IRLS, trimmed refit) failed to converge."""

    exit_code = 13

    def __init__(self, message: str, iterations: int = 0):
        super().__init__(message)
        self.iterations = iterations


class ModelFormatError(ReproError, ValueError):
    """A persisted model file is corrupt, truncated, or unsupported.

    ``path`` names the offending file (when known) and ``reason`` states
    what was wrong with it; both appear in ``str(error)``.
    """

    exit_code = 14

    def __init__(self, reason: str, path: Optional[str] = None):
        self.reason = reason
        self.path = path
        message = f"{path}: {reason}" if path else reason
        super().__init__(message)


class ProbeError(ReproError, ValueError):
    """A microbenchmark probe could not be built or interpreted."""

    exit_code = 15


class ConfigurationError(ReproError, ValueError):
    """Inconsistent bench/trainer configuration (bad method, core kind…)."""

    exit_code = 16


class AnalysisError(ReproError):
    """Static analysis (``python -m tools.analysis``) found violations.

    Raised/exited by the repro-lint gate when unsuppressed findings
    remain, so ``make check`` failures from the analyzer are
    distinguishable from test failures in scripted pipelines.
    """

    exit_code = 17


class CampaignError(ReproError):
    """A supervised campaign could not deliver every required item.

    Raised when quarantined items (per-item retry budget exhausted by
    crashes, timeouts, or worker exceptions) would leave a hole that the
    consumer cannot tolerate — model building and leakage assessments
    need every probe.  ``quarantined`` carries the indices of the lost
    items so operators can rerun or exclude them deliberately.
    """

    exit_code = 18

    def __init__(self, message: str,
                 quarantined: Optional[list] = None):
        super().__init__(message)
        self.quarantined = list(quarantined or [])


class CheckpointError(ReproError):
    """A checkpoint journal is corrupt or inconsistent with the campaign.

    Raised when a journal's header metadata does not match the resuming
    campaign's configuration, when a record fails its checksum, or when
    a non-trailing record cannot be parsed (trailing torn writes are
    tolerated and truncated — they are the expected crash artifact).
    """

    exit_code = 19


class AssemblerError(ReproError, ValueError):
    """Raised for any syntactic or semantic assembly error.

    Lives here (rather than in :mod:`repro.isa.assembler`, which
    re-exports it) so the CLI exit-code table and the static E601
    escape analysis see one authoritative hierarchy.
    """

    exit_code = 20

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        location = f" (line {line_number}: {line.strip()!r})" if line else ""
        super().__init__(message + location)
        self.line_number = line_number


class TraceCodecError(ReproError, ValueError):
    """Raised when a byte stream is not a valid ``repro-trace/1`` trace.

    Re-exported by :mod:`repro.uarch.tracecodec`, its historical home.
    """

    exit_code = 21


class MitigationError(ReproError, ValueError):
    """Raised when a program cannot be safely balance-transformed.

    Re-exported by :mod:`repro.leakage.mitigation`, its historical home.
    """

    exit_code = 22


def exit_code_for(error: BaseException) -> int:
    """CLI exit code for an exception (1 for non-:class:`ReproError`)."""
    if isinstance(error, ReproError):
        return error.exit_code
    return 1
