"""Seeded, composable fault injection for the oscilloscope/device path.

Real model-building campaigns (thousands of scope captures, §V-A of the
paper) see every failure a bench can produce: missed triggers, probe
cables that drift as they heat, ADC saturation from a gain surge, burst
interference from neighbouring equipment, clock-jitter spikes, dropped
samples, and whole-device brown-outs.  This module reproduces those
faults *deterministically* so the resilient acquisition path (health
gates, retry, degradation — :mod:`repro.robustness.retry`) and the robust
fitting path (:mod:`repro.core.regression`) can be exercised and
regression-tested.

A :class:`FaultPlan` declares per-capture probabilities and magnitudes;
a :class:`FaultInjector` owns the seeded RNG plus the (stateful)
brown-out countdown and is threaded into
:class:`~repro.signal.acquisition.Oscilloscope`.  Capture-killing faults
(trigger loss, brown-out) raise :class:`~repro.robustness.errors.AcquisitionError`;
signal-corrupting faults transform the ``(times, samples)`` pair in
place of the clean capture.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import AcquisitionError, ConfigurationError

__all__ = ["FaultPlan", "FaultInjector", "CorruptionRecipe", "FAULT_KINDS"]

FAULT_KINDS = ("trigger_loss", "brownout", "drop", "saturation", "burst",
               "drift", "jitter_spike")
"""Every fault family the injector can produce, in application order."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-capture fault probabilities and magnitudes.

    All probabilities are evaluated independently per capture (per
    repetition on the repetition loop), so faults compose: a single
    capture can drift *and* clip *and* lose samples.  ``seed`` makes the
    whole fault stream reproducible.
    """

    # capture-killing faults
    trigger_loss_prob: float = 0.0    # scope never fires; trace lost
    brownout_prob: float = 0.0        # device browns out ...
    brownout_captures: int = 3        # ... for this many captures

    # sample-corrupting faults
    drop_rate: float = 0.0            # per-sample loss probability
    saturation_prob: float = 0.0      # transient gain surge -> ADC rails
    saturation_gain: float = 8.0
    burst_prob: float = 0.0           # burst interference window
    burst_fraction: float = 0.08      # fraction of the capture hit
    burst_rms: float = 1.5            # burst noise std-dev (signal units)
    drift_prob: float = 0.0           # probe gain ramps across a capture
    drift_span: float = 0.35          # max fractional gain change
    jitter_spike_prob: float = 0.0    # clock spike shifts the time base
    jitter_spike_cycles: float = 0.8  # shift magnitude (device cycles)

    seed: int = 0

    @property
    def any_active(self) -> bool:
        """Whether this plan can produce any fault at all."""
        return any(getattr(self, f) > 0.0 for f in (
            "trigger_loss_prob", "brownout_prob", "drop_rate",
            "saturation_prob", "burst_prob", "drift_prob",
            "jitter_spike_prob"))

    @classmethod
    def preset(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Canonical mixed-fault plan at a headline per-capture rate.

        ``rate`` is the probability of each *major* fault family hitting a
        given capture (the "20 % capture-fault rate" of the acceptance
        experiments); rarer catastrophic faults scale down from it.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1]: {rate!r}")
        return cls(
            trigger_loss_prob=rate,
            brownout_prob=rate / 10.0,
            drop_rate=rate / 10.0,
            saturation_prob=rate,
            burst_prob=rate,
            drift_prob=rate,
            jitter_spike_prob=rate / 2.0,
            seed=seed)

    def describe(self) -> str:
        """Compact non-zero-fields description for logs."""
        parts = []
        for field_ in fields(self):
            if field_.name == "seed":
                continue
            value = getattr(self, field_.name)
            default = field_.default
            if value != default:
                parts.append(f"{field_.name}={value:g}")
        return f"FaultPlan({', '.join(parts) or 'clean'}, seed={self.seed})"


@dataclass
class CorruptionRecipe:
    """One capture's drawn corruption decisions, ready to apply.

    Produced by :meth:`FaultInjector.draw_corruption`; ``None`` fields
    mean the corresponding fault did not fire.  Splitting draw from
    apply lets the batched acquisition path consume the injector's RNG
    stream in exact sequential order while deferring the (hoisted)
    signal evaluation.
    """

    drift_span: Optional[float] = None
    saturate: bool = False
    burst_start: int = 0
    burst_noise: Optional[np.ndarray] = None
    jitter_pivot: Optional[int] = None
    jitter_shift: float = 0.0
    drop_keep: Optional[np.ndarray] = None


class FaultInjector:
    """Applies a :class:`FaultPlan` to successive captures.

    Stateful: owns the seeded RNG stream and the brown-out countdown, and
    counts every fault fired (``counters``) so tests and run reports can
    verify the injected mix.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counters: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._brownout_remaining = 0

    def reseed(self, rng: np.random.Generator) -> None:
        """Rebase the injector on a fresh RNG stream.

        Used by parallel campaigns to give every probe its own
        deterministic fault stream (independent of worker scheduling).
        A fresh stream implies a fresh bench state, so the brown-out
        countdown is cleared too; the fault counters keep accumulating.
        """
        self.rng = rng
        self._brownout_remaining = 0

    # ------------------------------------------------------------------
    # capture-killing faults
    # ------------------------------------------------------------------
    def begin_capture(self) -> None:
        """Gate one capture attempt; raises if the trace is lost."""
        plan = self.plan
        if self._brownout_remaining > 0:
            self._brownout_remaining -= 1
            self.counters["brownout"] += 1
            raise AcquisitionError("device brown-out: no response from "
                                   "the device under test")
        if plan.brownout_prob > 0.0 and \
                self.rng.random() < plan.brownout_prob:
            # this capture and the next few all fail
            self._brownout_remaining = max(0, plan.brownout_captures - 1)
            self.counters["brownout"] += 1
            raise AcquisitionError("device brown-out: supply dipped "
                                   "mid-capture")
        if plan.trigger_loss_prob > 0.0 and \
                self.rng.random() < plan.trigger_loss_prob:
            self.counters["trigger_loss"] += 1
            raise AcquisitionError("trigger loss: scope did not fire")

    # ------------------------------------------------------------------
    # sample-corrupting faults
    # ------------------------------------------------------------------
    def draw_corruption(self, length: int) -> "CorruptionRecipe":
        """Draw this capture's corruption decisions without applying them.

        Every fault decision is *value-independent* — the RNG draws
        depend only on the capture length — so the batched acquisition
        path can consume the fault stream in exact sequential order
        *before* the (hoisted) waveform evaluation, then apply the
        recorded recipe afterwards.  One ``draw_corruption`` +
        :meth:`apply_corruption` pair is bit-identical to one
        :meth:`corrupt` call, including the RNG stream it leaves behind.
        """
        plan, rng = self.plan, self.rng
        recipe = CorruptionRecipe()

        if plan.drift_prob > 0.0 and rng.random() < plan.drift_prob:
            self.counters["drift"] += 1
            recipe.drift_span = plan.drift_span * rng.uniform(-1.0, 1.0)

        if plan.saturation_prob > 0.0 and \
                rng.random() < plan.saturation_prob:
            self.counters["saturation"] += 1
            recipe.saturate = True

        if plan.burst_prob > 0.0 and rng.random() < plan.burst_prob:
            self.counters["burst"] += 1
            width = max(1, int(plan.burst_fraction * length))
            recipe.burst_start = int(rng.integers(0, max(1, length - width)))
            recipe.burst_noise = rng.normal(0.0, plan.burst_rms, size=width)

        if plan.jitter_spike_prob > 0.0 and \
                rng.random() < plan.jitter_spike_prob:
            self.counters["jitter_spike"] += 1
            recipe.jitter_pivot = int(rng.integers(0, max(1, length)))
            recipe.jitter_shift = plan.jitter_spike_cycles * \
                rng.uniform(-1.0, 1.0)

        if plan.drop_rate > 0.0:
            keep = rng.random(length) >= plan.drop_rate
            if not keep.all():
                self.counters["drop"] += 1
                recipe.drop_keep = keep

        return recipe

    def apply_corruption(self, recipe: "CorruptionRecipe",
                         times: np.ndarray, samples: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply a previously drawn :class:`CorruptionRecipe`.

        Pure (no RNG): transforms ``(times, samples)`` exactly as the
        inline path would have.
        """
        plan = self.plan
        times = np.asarray(times, dtype=float)
        samples = np.asarray(samples, dtype=float)

        if recipe.drift_span is not None:
            samples = samples * np.linspace(1.0, 1.0 + recipe.drift_span,
                                            len(samples))
        if recipe.saturate:
            samples = samples * plan.saturation_gain
        if recipe.burst_noise is not None:
            samples = samples.copy()
            start = recipe.burst_start
            samples[start:start + len(recipe.burst_noise)] += \
                recipe.burst_noise
        if recipe.jitter_pivot is not None:
            times = times.copy()
            times[recipe.jitter_pivot:] += recipe.jitter_shift
        if recipe.drop_keep is not None:
            times = times[recipe.drop_keep]
            samples = samples[recipe.drop_keep]
        return times, samples

    def corrupt(self, times: np.ndarray, samples: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply the plan's signal-level faults to one raw capture.

        Returns possibly-shorter arrays (dropped samples are removed, not
        zero-filled — exactly what a scope with transfer hiccups hands
        back).  Applied *before* ADC quantization so saturation rails.
        """
        samples = np.asarray(samples, dtype=float)
        recipe = self.draw_corruption(len(samples))
        return self.apply_corruption(recipe, times, samples)

    def total_faults(self) -> int:
        """Total fault events fired so far (all kinds)."""
        return sum(self.counters.values())
