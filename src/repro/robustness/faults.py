"""Seeded, composable fault injection for the oscilloscope/device path.

Real model-building campaigns (thousands of scope captures, §V-A of the
paper) see every failure a bench can produce: missed triggers, probe
cables that drift as they heat, ADC saturation from a gain surge, burst
interference from neighbouring equipment, clock-jitter spikes, dropped
samples, and whole-device brown-outs.  This module reproduces those
faults *deterministically* so the resilient acquisition path (health
gates, retry, degradation — :mod:`repro.robustness.retry`) and the robust
fitting path (:mod:`repro.core.regression`) can be exercised and
regression-tested.

A :class:`FaultPlan` declares per-capture probabilities and magnitudes;
a :class:`FaultInjector` owns the seeded RNG plus the (stateful)
brown-out countdown and is threaded into
:class:`~repro.signal.acquisition.Oscilloscope`.  Capture-killing faults
(trigger loss, brown-out) raise :class:`~repro.robustness.errors.AcquisitionError`;
signal-corrupting faults transform the ``(times, samples)`` pair in
place of the clean capture.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

import numpy as np

from .errors import AcquisitionError

__all__ = ["FaultPlan", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = ("trigger_loss", "brownout", "drop", "saturation", "burst",
               "drift", "jitter_spike")
"""Every fault family the injector can produce, in application order."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-capture fault probabilities and magnitudes.

    All probabilities are evaluated independently per capture (per
    repetition on the repetition loop), so faults compose: a single
    capture can drift *and* clip *and* lose samples.  ``seed`` makes the
    whole fault stream reproducible.
    """

    # capture-killing faults
    trigger_loss_prob: float = 0.0    # scope never fires; trace lost
    brownout_prob: float = 0.0        # device browns out ...
    brownout_captures: int = 3        # ... for this many captures

    # sample-corrupting faults
    drop_rate: float = 0.0            # per-sample loss probability
    saturation_prob: float = 0.0      # transient gain surge -> ADC rails
    saturation_gain: float = 8.0
    burst_prob: float = 0.0           # burst interference window
    burst_fraction: float = 0.08      # fraction of the capture hit
    burst_rms: float = 1.5            # burst noise std-dev (signal units)
    drift_prob: float = 0.0           # probe gain ramps across a capture
    drift_span: float = 0.35          # max fractional gain change
    jitter_spike_prob: float = 0.0    # clock spike shifts the time base
    jitter_spike_cycles: float = 0.8  # shift magnitude (device cycles)

    seed: int = 0

    @property
    def any_active(self) -> bool:
        """Whether this plan can produce any fault at all."""
        return any(getattr(self, f) > 0.0 for f in (
            "trigger_loss_prob", "brownout_prob", "drop_rate",
            "saturation_prob", "burst_prob", "drift_prob",
            "jitter_spike_prob"))

    @classmethod
    def preset(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Canonical mixed-fault plan at a headline per-capture rate.

        ``rate`` is the probability of each *major* fault family hitting a
        given capture (the "20 % capture-fault rate" of the acceptance
        experiments); rarer catastrophic faults scale down from it.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1]: {rate!r}")
        return cls(
            trigger_loss_prob=rate,
            brownout_prob=rate / 10.0,
            drop_rate=rate / 10.0,
            saturation_prob=rate,
            burst_prob=rate,
            drift_prob=rate,
            jitter_spike_prob=rate / 2.0,
            seed=seed)

    def describe(self) -> str:
        """Compact non-zero-fields description for logs."""
        parts = []
        for field_ in fields(self):
            if field_.name == "seed":
                continue
            value = getattr(self, field_.name)
            default = field_.default
            if value != default:
                parts.append(f"{field_.name}={value:g}")
        return f"FaultPlan({', '.join(parts) or 'clean'}, seed={self.seed})"


class FaultInjector:
    """Applies a :class:`FaultPlan` to successive captures.

    Stateful: owns the seeded RNG stream and the brown-out countdown, and
    counts every fault fired (``counters``) so tests and run reports can
    verify the injected mix.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counters: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._brownout_remaining = 0

    # ------------------------------------------------------------------
    # capture-killing faults
    # ------------------------------------------------------------------
    def begin_capture(self) -> None:
        """Gate one capture attempt; raises if the trace is lost."""
        plan = self.plan
        if self._brownout_remaining > 0:
            self._brownout_remaining -= 1
            self.counters["brownout"] += 1
            raise AcquisitionError("device brown-out: no response from "
                                   "the device under test")
        if plan.brownout_prob > 0.0 and \
                self.rng.random() < plan.brownout_prob:
            # this capture and the next few all fail
            self._brownout_remaining = max(0, plan.brownout_captures - 1)
            self.counters["brownout"] += 1
            raise AcquisitionError("device brown-out: supply dipped "
                                   "mid-capture")
        if plan.trigger_loss_prob > 0.0 and \
                self.rng.random() < plan.trigger_loss_prob:
            self.counters["trigger_loss"] += 1
            raise AcquisitionError("trigger loss: scope did not fire")

    # ------------------------------------------------------------------
    # sample-corrupting faults
    # ------------------------------------------------------------------
    def corrupt(self, times: np.ndarray, samples: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply the plan's signal-level faults to one raw capture.

        Returns possibly-shorter arrays (dropped samples are removed, not
        zero-filled — exactly what a scope with transfer hiccups hands
        back).  Applied *before* ADC quantization so saturation rails.
        """
        plan, rng = self.plan, self.rng
        times = np.asarray(times, dtype=float)
        samples = np.asarray(samples, dtype=float)

        if plan.drift_prob > 0.0 and rng.random() < plan.drift_prob:
            self.counters["drift"] += 1
            span = plan.drift_span * rng.uniform(-1.0, 1.0)
            samples = samples * np.linspace(1.0, 1.0 + span, len(samples))

        if plan.saturation_prob > 0.0 and \
                rng.random() < plan.saturation_prob:
            self.counters["saturation"] += 1
            samples = samples * plan.saturation_gain

        if plan.burst_prob > 0.0 and rng.random() < plan.burst_prob:
            self.counters["burst"] += 1
            width = max(1, int(plan.burst_fraction * len(samples)))
            start = rng.integers(0, max(1, len(samples) - width))
            samples = samples.copy()
            samples[start:start + width] += rng.normal(
                0.0, plan.burst_rms, size=width)

        if plan.jitter_spike_prob > 0.0 and \
                rng.random() < plan.jitter_spike_prob:
            self.counters["jitter_spike"] += 1
            pivot = rng.integers(0, max(1, len(times)))
            shift = plan.jitter_spike_cycles * rng.uniform(-1.0, 1.0)
            times = times.copy()
            times[pivot:] += shift

        if plan.drop_rate > 0.0:
            keep = rng.random(len(samples)) >= plan.drop_rate
            if not keep.all():
                self.counters["drop"] += 1
                times, samples = times[keep], samples[keep]

        return times, samples

    def total_faults(self) -> int:
        """Total fault events fired so far (all kinds)."""
        return sum(self.counters.values())
