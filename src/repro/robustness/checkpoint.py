"""Crash-safe checkpoint journal for supervised campaigns.

A campaign that runs for hours must survive being killed at any byte:
:class:`CheckpointJournal` is an append-only JSONL file where every
completed item lands as one self-checksummed record, flushed and
``fsync``'d before the campaign moves on.  Because each record is a
single ``write()`` of one line, the only possible crash artifact is a
*torn trailing line*, which the loader detects and truncates; anything
else that fails to parse is real corruption and raises
:class:`~repro.robustness.errors.CheckpointError`.

File layout::

    {"schema": "repro-checkpoint/1", "meta": {...campaign config...}}
    {"key": "<sha-256>", "index": 0, "sha256": "...", "payload": "<b64>"}
    {"key": "<sha-256>", "index": 1, "sha256": "...", "payload": "<b64>"}

Keys are content hashes of the campaign item (campaigns reuse
:func:`repro.core.trace_cache.trace_key`; ad-hoc item shapes use
:func:`content_key`), so a resumed run only skips an item when the
program bytes, configuration, seed, and position all match — and the
header ``meta`` must equal the resuming campaign's, so a journal can
never silently feed results into a differently-configured run.
Payloads are pickled Python values (numpy arrays round-trip
bit-exactly), which is what makes resumed campaigns bit-identical to
uninterrupted ones.

This module deliberately imports nothing from the simulation layers, so
it sits at the bottom of the dependency graph next to
:mod:`repro.robustness.errors`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import signal as _signal
from contextlib import contextmanager, suppress
from typing import Any, Dict, Iterator, List, Optional

from .errors import CheckpointError

__all__ = ["JOURNAL_SCHEMA", "CheckpointJournal", "content_key",
           "journal_summary"]

JOURNAL_SCHEMA = "repro-checkpoint/1"
"""Schema tag stamped into every journal's header record."""


def content_key(*parts: object) -> str:
    """SHA-256 digest over a tuple of hashable-by-repr parts.

    The generic checkpoint key for campaign items that are not
    :class:`~repro.isa.program.Program` objects (TVLA input vectors,
    SAVAT instruction pairs): each part is folded in as its ``repr``
    (bytes pass through raw), separated so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide.
    """
    hasher = hashlib.sha256()
    for part in parts:
        data = part if isinstance(part, bytes) else repr(part).encode()
        hasher.update(len(data).to_bytes(8, "little"))
        hasher.update(data)
    return hasher.hexdigest()


def journal_summary(path: str) -> Dict[str, Any]:
    """Lightweight digest of a journal file for run reports.

    Reads the header and counts records *without unpickling payloads*
    (a report must never execute pickle from a journal it is merely
    describing).  Record lines only need to parse as JSON and carry the
    record keys; checksums are not re-verified — resuming is the
    integrity gate, reporting is not.  A torn trailing line is counted
    separately, matching the loader's truncation policy.  Raises
    :class:`~repro.robustness.errors.CheckpointError` for a missing
    file, missing header, or wrong schema.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read journal ({exc})")
    lines = raw.split(b"\n")
    body, tail = lines[:-1], lines[-1]
    if not body:
        raise CheckpointError(f"{path}: journal has no header record")
    try:
        header = json.loads(body[0])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}:1: corrupt journal header ({exc})")
    if header.get("schema") != JOURNAL_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported journal schema "
            f"{header.get('schema')!r} (expected {JOURNAL_SCHEMA!r})")
    records = 0
    malformed = 0
    for line in body[1:]:
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            malformed += 1
            continue
        if isinstance(record, dict) and "key" in record:
            records += 1
        else:
            malformed += 1
    return {
        "path": str(path),
        "schema": JOURNAL_SCHEMA,
        "meta": dict(header.get("meta", {})),
        "records": records,
        "malformed": malformed,
        "torn_tail": bool(tail),
    }


class CheckpointJournal:
    """Append-only, fsync'd JSONL journal of completed campaign items.

    ``resume=True`` replays an existing journal (validating schema,
    metadata, and per-record checksums; truncating a torn trailing
    line) and appends to it; ``resume=False`` starts fresh, truncating
    whatever was there.  Use :meth:`guarded` around the campaign loop
    to also flush on SIGINT/SIGTERM before the default reaction runs.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None,
                 resume: bool = True):
        self.path = path
        self.meta: Dict[str, Any] = dict(meta or {})
        self._records: Dict[str, bytes] = {}
        self._resumed = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if resume and os.path.exists(path):
            self._load()
            self._handle = open(path, "ab")
        else:
            self._handle = open(path, "wb")
            self._append({"schema": JOURNAL_SCHEMA, "meta": self.meta})

    # ------------------------------------------------------------------
    # loading / recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Replay the journal; truncate a torn trailing write."""
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        body, tail = lines[:-1], lines[-1]
        documents: List[dict] = []
        for number, line in enumerate(body, start=1):
            try:
                documents.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise CheckpointError(
                    f"{self.path}:{number}: corrupt journal record "
                    f"({exc}); only the trailing line may be torn — "
                    f"delete the journal to restart from scratch")
        if not documents:
            raise CheckpointError(
                f"{self.path}: journal has no header record")
        header = documents[0]
        if header.get("schema") != JOURNAL_SCHEMA:
            raise CheckpointError(
                f"{self.path}: unsupported journal schema "
                f"{header.get('schema')!r} (expected {JOURNAL_SCHEMA!r})")
        stored_meta = header.get("meta", {})
        if self.meta and stored_meta != self.meta:
            raise CheckpointError(
                f"{self.path}: journal metadata does not match this "
                f"campaign (journal: {stored_meta!r}, campaign: "
                f"{self.meta!r}); resuming would mix configurations — "
                f"delete the journal or fix the flags")
        self.meta = dict(stored_meta)
        for number, record in enumerate(documents[1:], start=2):
            try:
                key = record["key"]
                payload = base64.b64decode(record["payload"])
                digest = record["sha256"]
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"{self.path}:{number}: malformed journal record "
                    f"({exc})")
            if hashlib.sha256(payload).hexdigest() != digest:
                raise CheckpointError(
                    f"{self.path}:{number}: checksum mismatch for key "
                    f"{key[:16]}…; the journal is corrupt")
            self._records[key] = payload
        self._resumed = len(self._records)
        if tail:
            # a torn trailing write is the expected artifact of a crash
            # mid-append; drop it so the next append starts a clean line
            os.truncate(self.path, len(raw) - len(tail))

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _append(self, document: dict) -> None:
        """One record = one ``write()`` of one line, flushed + fsync'd."""
        line = (json.dumps(document, sort_keys=True) + "\n").encode()
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, index: int, value: Any) -> None:
        """Journal one completed item's result under ``key``."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._append({
            "key": key,
            "index": int(index),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": base64.b64encode(payload).decode("ascii"),
        })
        self._records[key] = payload

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def lookup(self, key: str) -> Any:
        """The stored result for ``key`` (bit-exact round trip)."""
        return pickle.loads(self._records[key])

    def keys(self) -> List[str]:
        """All journaled keys, in insertion (= completion) order."""
        return list(self._records)

    @property
    def resumed_records(self) -> int:
        """How many records were replayed from disk at open time."""
        return self._resumed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Best-effort flush + fsync (safe on a closed journal)."""
        with suppress(OSError, ValueError):
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the underlying file."""
        self.flush()
        with suppress(OSError, ValueError):
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @contextmanager
    def guarded(self) -> Iterator["CheckpointJournal"]:
        """Flush the journal on SIGINT/SIGTERM, then react as before.

        Installs handlers for the supervised campaign's run window and
        restores the previous ones on exit.  Outside the main thread
        (where ``signal.signal`` is unavailable) this degrades to a
        plain pass-through — every append is fsync'd anyway, so the
        guard only covers the file-object buffer.
        """
        previous: Dict[int, object] = {}

        def _flush_then_react(signum: int, frame: object) -> None:
            self.flush()
            handler = previous.get(signum)
            if callable(handler):
                handler(signum, frame)
            elif signum == _signal.SIGINT:
                raise KeyboardInterrupt
            else:
                raise SystemExit(128 + signum)

        try:
            for signum in (_signal.SIGINT, _signal.SIGTERM):
                try:
                    previous[signum] = _signal.signal(signum,
                                                      _flush_then_react)
                except ValueError:
                    # not the main thread: signals cannot be hooked here
                    break
            yield self
        finally:
            for signum, handler in previous.items():
                _signal.signal(signum, handler)
