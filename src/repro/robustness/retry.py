"""Bounded retry, exponential backoff, and graceful degradation.

The acquisition ladder for one probe measurement:

1. **capture** via the requested method (scope + modulo by default);
2. **health-gate** the capture (:class:`~repro.robustness.health.HealthPolicy`);
3. on failure, **retry** with exponential backoff and deterministic
   jitter, **escalating the repetition count** (more modulo averaging)
   once quality — not delivery — is the problem;
4. after the attempt budget, **degrade** to the ideal-grid capture with a
   logged warning (unless ``strict``), so one bad probe never kills a
   thousand-probe training campaign.

Everything is deterministic: backoff jitter comes from a seeded RNG and
the default ``sleep`` is a no-op (the synthetic bench has no real scope
to wait for; a hardware port passes ``time.sleep``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .errors import AcquisitionError, CaptureQualityError
from .health import HealthPolicy

__all__ = ["RetryPolicy", "ProbeOutcome", "AcquisitionStats",
           "CaptureSupervisor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter."""

    max_attempts: int = 4
    base_delay: float = 0.01      # seconds before the first retry
    backoff: float = 2.0          # delay multiplier per retry
    jitter: float = 0.25          # +/- fractional jitter on each delay
    max_delay: float = 1.0
    escalation: float = 2.0       # repetition multiplier per quality miss
    max_repetitions: int = 1000   # the paper's collection budget
    seed: int = 0

    def delay(self, retry_index: int) -> float:
        """Backoff delay before retry ``retry_index`` (0-based).

        Jitter is drawn from an RNG keyed on ``(seed, retry_index)`` so a
        given policy always produces the same schedule — reproducible
        runs, desynchronized benches.
        """
        raw = min(self.max_delay,
                  self.base_delay * self.backoff ** retry_index)
        wobble = np.random.default_rng(
            [self.seed, retry_index]).uniform(-1.0, 1.0)
        return max(0.0, raw * (1.0 + self.jitter * wobble))

    def schedule(self) -> List[float]:
        """The full deterministic delay schedule (one per retry)."""
        return [self.delay(i) for i in range(self.max_attempts - 1)]


@dataclass
class ProbeOutcome:
    """What it took to obtain one probe measurement."""

    program: str = ""
    attempts: int = 1
    retries: int = 0
    capture_failures: int = 0     # AcquisitionError during delivery
    quality_rejects: int = 0      # health-gate rejections
    escalations: int = 0          # repetition-count bumps
    degraded: bool = False        # fell back to the ideal grid
    final_method: str = ""
    final_repetitions: int = 0
    waited: float = 0.0           # total scheduled backoff (seconds)
    reasons: List[str] = field(default_factory=list)


@dataclass
class AcquisitionStats:
    """Aggregate acquisition accounting across a training run."""

    probes: int = 0
    captures_attempted: int = 0
    probes_retried: int = 0
    capture_failures: int = 0
    quality_rejects: int = 0
    escalations: int = 0
    probes_degraded: int = 0

    def record(self, outcome: ProbeOutcome) -> None:
        self.probes += 1
        self.captures_attempted += outcome.attempts
        if outcome.retries:
            self.probes_retried += 1
        self.capture_failures += outcome.capture_failures
        self.quality_rejects += outcome.quality_rejects
        self.escalations += outcome.escalations
        if outcome.degraded:
            self.probes_degraded += 1

    def summary(self) -> str:
        return (f"probes={self.probes} captures={self.captures_attempted} "
                f"retried={self.probes_retried} "
                f"rejected={self.quality_rejects} "
                f"lost={self.capture_failures} "
                f"escalated={self.escalations} "
                f"degraded={self.probes_degraded}")


class CaptureSupervisor:
    """Runs the retry/escalate/degrade ladder around a device bench.

    ``allow_degradation=False`` (the CLI's ``--strict``) turns the final
    ideal-grid fallback off: the last typed error propagates instead.
    """

    def __init__(self, device,
                 retry: Optional[RetryPolicy] = None,
                 health: Optional[HealthPolicy] = None,
                 allow_degradation: bool = True,
                 sleep: Optional[Callable[[float], None]] = None,
                 log: Optional[Callable[[str], None]] = None):
        self.device = device
        self.retry = retry or RetryPolicy()
        self.health = health or HealthPolicy()
        self.allow_degradation = allow_degradation
        self.sleep = sleep
        self.log = log
        self.stats = AcquisitionStats()

    def _note(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def measure(self, program, method: str = "ideal",
                repetitions: int = 100, max_cycles: Optional[int] = None,
                batched: bool = False):
        """Acquire one gated measurement; returns ``(measurement, outcome)``.

        Raises the last :class:`AcquisitionError` /
        :class:`CaptureQualityError` only when degradation is disabled
        (or impossible, i.e. the ideal path itself failed).
        ``batched`` selects the vectorized repetition engine on the
        scope+modulo path (see
        :meth:`~repro.hardware.device.HardwareDevice.capture_reference`).
        """
        outcome = ProbeOutcome(program=getattr(program, "name", str(program)),
                               final_method=method,
                               final_repetitions=repetitions)
        reps = repetitions
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                delay = self.retry.delay(attempt - 1)
                outcome.waited += delay
                if self.sleep is not None:
                    self.sleep(delay)
                outcome.retries += 1
                outcome.attempts += 1
            try:
                # only thread the batched flag through when set, so
                # minimal bench stubs without the parameter keep working
                extra = {"batched": True} if batched else {}
                measurement = self.device.measure(
                    program, method=method, repetitions=reps,
                    max_cycles=max_cycles, **extra)
            except CaptureQualityError as error:   # raised by strict benches
                last_error = error
                outcome.quality_rejects += 1
                outcome.reasons.append(str(error))
                reps, outcome = self._escalate(reps, outcome)
                continue
            except AcquisitionError as error:
                last_error = error
                outcome.capture_failures += 1
                outcome.reasons.append(str(error))
                continue
            quality = getattr(measurement, "quality", None)
            if quality is not None:
                violations = self.health.violations(quality)
                if violations:
                    last_error = CaptureQualityError(
                        f"probe {outcome.program!r}: "
                        f"{'; '.join(violations)}",
                        violations=violations)
                    outcome.quality_rejects += 1
                    outcome.reasons.append(str(last_error))
                    reps, outcome = self._escalate(reps, outcome)
                    continue
            outcome.final_method = method
            outcome.final_repetitions = reps
            self.stats.record(outcome)
            return measurement, outcome

        if self.allow_degradation and method != "ideal":
            self._note(f"WARNING: probe {outcome.program!r} degraded to "
                       f"ideal-grid capture after "
                       f"{outcome.attempts} attempts "
                       f"({outcome.reasons[-1] if outcome.reasons else 'n/a'})")
            measurement = self.device.capture_ideal(program,
                                                    max_cycles=max_cycles)
            outcome.degraded = True
            outcome.final_method = "ideal"
            self.stats.record(outcome)
            return measurement, outcome

        self.stats.record(outcome)
        if last_error is None:      # pragma: no cover - defensive
            last_error = AcquisitionError(
                f"probe {outcome.program!r}: no capture obtained")
        raise last_error

    def _escalate(self, reps, outcome):
        """Bump the repetition count after a quality rejection."""
        escalated = min(self.retry.max_repetitions,
                        int(np.ceil(reps * self.retry.escalation)))
        if escalated > reps:
            outcome.escalations += 1
            self._note(f"probe {outcome.program!r}: escalating "
                       f"repetitions {reps} -> {escalated}")
        return escalated, outcome
