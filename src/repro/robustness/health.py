"""Capture quality assessment and health gating.

Before a capture is allowed into model training it is scored on three
bench-observable statistics:

* **clipping ratio** — fraction of raw samples pinned to the ADC rails
  (gain surges, probe repositioning accidents);
* **SNR** — per-sample signal-to-residual ratio against the folded
  reference (burst interference, dead probes);
* **modulo-alignment residual** — how well the folded repetitions agree
  within offset bins (Eq. 1 consistency; clock-jitter spikes and trigger
  walk destroy it even when the SNR looks fine).

:func:`assess_capture` computes a :class:`CaptureQuality` from the raw
repetition stream; :class:`HealthPolicy` holds the thresholds and either
lists the violations or raises a typed
:class:`~repro.robustness.errors.CaptureQualityError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..signal.modulo import modular_offsets, modulo_average
from .errors import CaptureQualityError

_EPS = 1e-12

__all__ = ["CaptureQuality", "HealthPolicy", "RepetitionScreen",
           "assess_capture", "clipping_ratio", "screen_repetitions"]


def clipping_ratio(samples: np.ndarray, adc_range: float,
                   adc_bits: int) -> float:
    """Fraction of samples at (or beyond) the ADC rails."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return 0.0
    step = adc_range / (2 ** adc_bits)
    low = -adc_range / 2.0
    high = adc_range / 2.0 - step
    railed = (samples <= low + step / 2) | (samples >= high - step / 2)
    return float(np.mean(railed))


@dataclass
class CaptureQuality:
    """Bench-observable quality statistics of one capture.

    ``lost_repetitions`` counts traces the scope never delivered
    (trigger loss, brown-outs); ``screened_repetitions`` counts delivered
    traces the per-repetition screen rejected as corrupt; the remaining
    ``clean_repetitions`` are what the folded reference is built from.
    """

    clipping_ratio: float
    snr_db: float
    alignment_residual: float     # within-bin residual RMS / signal RMS
    lost_repetitions: int = 0
    screened_repetitions: int = 0
    total_repetitions: int = 0
    num_samples: int = 0

    @property
    def clean_repetitions(self) -> int:
        return max(0, self.total_repetitions - self.lost_repetitions -
                   self.screened_repetitions)

    @property
    def lost_fraction(self) -> float:
        if self.total_repetitions <= 0:
            return 0.0
        return (self.lost_repetitions + self.screened_repetitions) / \
            self.total_repetitions

    def summary(self) -> str:
        return (f"clip={self.clipping_ratio:.1%} snr={self.snr_db:.1f}dB "
                f"align={self.alignment_residual:.3f} "
                f"clean={self.clean_repetitions}/{self.total_repetitions} "
                f"(lost {self.lost_repetitions}, screened "
                f"{self.screened_repetitions})")


@dataclass(frozen=True)
class HealthPolicy:
    """Acceptance thresholds for a capture (the health gate).

    The pooled statistics are computed *after* per-repetition screening,
    so the gate checks the reference the fit would actually consume.
    ``min_clean_repetitions`` is the knob the escalation ladder pulls on:
    doubling the repetition budget roughly doubles the clean survivors,
    so a rejected capture becomes acceptable instead of looping forever.
    """

    max_clipping_ratio: float = 0.02
    min_snr_db: float = 6.0
    max_alignment_residual: float = 0.45
    min_clean_repetitions: int = 6
    min_samples: int = 32

    def violations(self, quality: CaptureQuality) -> List[str]:
        """Human-readable threshold violations (empty = healthy)."""
        found = []
        if quality.num_samples < self.min_samples:
            found.append(f"only {quality.num_samples} samples "
                         f"(min {self.min_samples})")
        if quality.clipping_ratio > self.max_clipping_ratio:
            found.append(f"clipping ratio {quality.clipping_ratio:.1%} "
                         f"> {self.max_clipping_ratio:.1%}")
        if quality.snr_db < self.min_snr_db:
            found.append(f"SNR {quality.snr_db:.1f} dB "
                         f"< {self.min_snr_db:.1f} dB floor")
        if quality.alignment_residual > self.max_alignment_residual:
            found.append(
                f"modulo-alignment residual {quality.alignment_residual:.3f}"
                f" > {self.max_alignment_residual:.3f}")
        if quality.total_repetitions > 0 and \
                quality.clean_repetitions < self.min_clean_repetitions:
            found.append(f"only {quality.clean_repetitions} clean "
                         f"repetitions of {quality.total_repetitions} "
                         f"(min {self.min_clean_repetitions})")
        return found

    def check(self, quality: CaptureQuality,
              context: str = "capture") -> None:
        """Raise :class:`CaptureQualityError` if the capture is unhealthy."""
        violations = self.violations(quality)
        if violations:
            raise CaptureQualityError(
                f"{context} failed health gate: {'; '.join(violations)}",
                violations=violations)


@dataclass
class RepetitionScreen:
    """Result of per-repetition screening of one capture run."""

    keep: np.ndarray                  # boolean mask over delivered reps
    reasons: List[str]                # one line per rejected repetition

    @property
    def rejected(self) -> int:
        return int((~self.keep).sum())


def screen_repetitions(times_list, samples_list, period: float,
                       num_bins: int, adc_range: float, adc_bits: int,
                       max_clipping_ratio: float = 0.02,
                       energy_tolerance: float = 0.5,
                       residual_factor: float = 3.0) -> RepetitionScreen:
    """Reject individually corrupted repetitions before folding.

    What a careful bench operator does with a thousand-trace campaign:
    throw away the traces that clipped, the ones whose energy is wildly
    off the run median (gain surges, strong drift, dead probe), and —
    after a provisional fold of the survivors — the ones that disagree
    with the folded reference far more than their peers (clock-jitter
    spikes, burst interference).  Retrying a rejected *run* with a larger
    repetition budget therefore converges: the clean subset grows even if
    the corruption rate stays constant.
    """
    count = len(samples_list)
    keep = np.ones(count, dtype=bool)
    reasons: List[str] = []
    if count == 0:
        return RepetitionScreen(keep=keep, reasons=reasons)

    # Equal-length repetitions (the overwhelmingly common case — only
    # drop faults produce ragged lists) stack into a matrix so both
    # screening stages run as row-wise reductions.  numpy reduces each
    # row of a 2-D array with the same pairwise summation it applies to
    # the equivalent 1-D array, so the stacked statistics are
    # bit-identical to the per-repetition loop's.
    lengths = {len(s) for s in samples_list}
    stacked = np.vstack(samples_list) if len(lengths) == 1 else None

    # stage A: per-trace amplitude statistics
    if stacked is not None:
        rms = np.sqrt(np.mean(np.square(stacked), axis=1)) + _EPS
    else:
        rms = np.array([float(np.sqrt(np.mean(np.square(s))) + _EPS)
                        for s in samples_list])
    median_rms = float(np.median(rms))
    if stacked is not None:
        step = adc_range / (2 ** adc_bits)
        low = -adc_range / 2.0
        high = adc_range / 2.0 - step
        railed = (stacked <= low + step / 2) | (stacked >= high - step / 2)
        clip_ratios = np.mean(railed, axis=1)
    else:
        clip_ratios = np.array([clipping_ratio(s, adc_range, adc_bits)
                                for s in samples_list])
    for index in range(count):
        clip = float(clip_ratios[index])
        if clip > max_clipping_ratio:
            keep[index] = False
            reasons.append(f"rep {index}: clipped ({clip:.1%})")
            continue
        if median_rms > _EPS and \
                abs(rms[index] / median_rms - 1.0) > energy_tolerance:
            keep[index] = False
            reasons.append(f"rep {index}: energy {rms[index]:.3f} vs "
                           f"median {median_rms:.3f}")

    # stage B: agreement with the provisional fold of the survivors
    if keep.sum() >= 3:
        survivor_samples = np.concatenate(
            [samples_list[i] for i in range(count) if keep[i]])
        survivor_times = np.concatenate(
            [times_list[i] for i in range(count) if keep[i]])
        reference, _ = modulo_average(survivor_samples, survivor_times,
                                      period=period, num_bins=num_bins)
        residuals = np.full(count, np.nan)
        if stacked is not None:
            times_mat = np.vstack(times_list)
            offsets = modular_offsets(times_mat, period)
            bins = np.round(offsets / period * num_bins).astype(int) \
                % num_bins
            residual = stacked - reference[bins]
            all_residuals = np.sqrt(np.mean(residual ** 2, axis=1))
            residuals[keep] = all_residuals[keep]
        else:
            for index in range(count):
                if not keep[index]:
                    continue
                offsets = modular_offsets(times_list[index], period)
                bins = np.round(offsets / period * num_bins).astype(int) \
                    % num_bins
                residual = samples_list[index] - reference[bins]
                residuals[index] = float(np.sqrt(np.mean(residual ** 2)))
        median_residual = float(np.nanmedian(residuals))
        if median_residual > _EPS:
            for index in range(count):
                if not keep[index]:
                    continue
                if residuals[index] > residual_factor * median_residual:
                    keep[index] = False
                    reasons.append(
                        f"rep {index}: fold residual "
                        f"{residuals[index]:.3f} vs median "
                        f"{median_residual:.3f}")

    return RepetitionScreen(keep=keep, reasons=reasons)


def assess_capture(samples: np.ndarray, times: np.ndarray, period: float,
                   num_bins: int, adc_range: float, adc_bits: int,
                   lost_repetitions: int = 0,
                   screened_repetitions: int = 0,
                   total_repetitions: int = 0,
                   reference: Optional[np.ndarray] = None
                   ) -> CaptureQuality:
    """Score one raw repetition stream against its folded reference.

    ``reference`` may be passed when the caller already folded the
    capture (avoids folding twice); otherwise it is recomputed here.
    """
    samples = np.asarray(samples, dtype=float)
    times = np.asarray(times, dtype=float)
    if samples.size == 0:
        return CaptureQuality(clipping_ratio=0.0, snr_db=-np.inf,
                              alignment_residual=np.inf,
                              lost_repetitions=lost_repetitions,
                              screened_repetitions=screened_repetitions,
                              total_repetitions=total_repetitions,
                              num_samples=0)
    if reference is None:
        reference, _ = modulo_average(samples, times, period=period,
                                      num_bins=num_bins)
    # residual of every raw sample against its own offset bin's average:
    # AWGN, bursts, drift, and misalignment all land here
    offsets = modular_offsets(times, period)
    bins = np.round(offsets / period * num_bins).astype(int) % num_bins
    residual = samples - reference[bins]
    signal_rms = float(np.sqrt(np.mean(
        (reference - reference.mean()) ** 2)))
    residual_rms = float(np.sqrt(np.mean(residual ** 2)))
    snr = (signal_rms + _EPS) / (residual_rms + _EPS)
    return CaptureQuality(
        clipping_ratio=clipping_ratio(samples, adc_range, adc_bits),
        snr_db=float(20.0 * np.log10(snr)),
        alignment_residual=residual_rms / (signal_rms + _EPS),
        lost_repetitions=lost_repetitions,
        screened_repetitions=screened_repetitions,
        total_repetitions=total_repetitions,
        num_samples=int(samples.size))
