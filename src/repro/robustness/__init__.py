"""Resilience layer: typed errors, fault injection, health gates, retry.

The bench-to-model pipeline (capture -> health gate -> retry/degrade ->
robust fit -> persist) assumes measurements can be noisy, clipped,
mis-triggered, or lost and that model files can be truncated.  This
package provides the pieces:

* :mod:`repro.robustness.errors` — the ``ReproError`` hierarchy and CLI
  exit codes;
* :mod:`repro.robustness.faults` — seeded composable fault injection for
  the oscilloscope/device path;
* :mod:`repro.robustness.health` — capture quality metrics + thresholds;
* :mod:`repro.robustness.retry` — bounded retry, exponential backoff with
  deterministic jitter, and the degradation ladder;
* :mod:`repro.robustness.checkpoint` — the crash-safe campaign journal
  behind ``--checkpoint-dir``/``--resume``.

See ``docs/robustness.md`` for the fault taxonomy, the degradation
ladder, and campaign supervision/resume end to end.
"""

from .checkpoint import (JOURNAL_SCHEMA, CheckpointJournal, content_key,
                         journal_summary)
from .errors import (AcquisitionError, AnalysisError, AssemblerError,
                     CampaignError, CaptureQualityError, CheckpointError,
                     ConfigurationError, ConvergenceError, MitigationError,
                     ModelFormatError, ProbeError, ReproError,
                     TraceCodecError, exit_code_for)
from .faults import FAULT_KINDS, FaultInjector, FaultPlan
from .health import (CaptureQuality, HealthPolicy, RepetitionScreen,
                     assess_capture, clipping_ratio, screen_repetitions)
from .retry import (AcquisitionStats, CaptureSupervisor, ProbeOutcome,
                    RetryPolicy)

__all__ = [
    "AcquisitionError",
    "AcquisitionStats",
    "AnalysisError",
    "AssemblerError",
    "CampaignError",
    "CaptureQuality",
    "CaptureQualityError",
    "CaptureSupervisor",
    "CheckpointError",
    "CheckpointJournal",
    "ConfigurationError",
    "ConvergenceError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "HealthPolicy",
    "JOURNAL_SCHEMA",
    "MitigationError",
    "ModelFormatError",
    "ProbeError",
    "ProbeOutcome",
    "RepetitionScreen",
    "ReproError",
    "RetryPolicy",
    "TraceCodecError",
    "assess_capture",
    "clipping_ratio",
    "content_key",
    "journal_summary",
    "exit_code_for",
    "screen_repetitions",
]
