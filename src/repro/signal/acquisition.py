"""Signal-acquisition front end: the oscilloscope model.

Stands in for the paper's Keysight DSOS804A (10 GSa/s) capturing the probe
output.  Models the practical imperfections the modulo operation has to
undo: a sampling grid asynchronous to the device clock, random trigger
offsets per repetition, additive white Gaussian noise, and finite ADC
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..robustness.errors import AcquisitionError
from ..robustness.faults import FaultInjector


@dataclass(frozen=True)
class ScopeConfig:
    """Acquisition parameters, normalized to the device clock.

    ``samples_per_cycle`` plays the role of f_s / f_clk (e.g. the paper's
    10 GSa/s at 50 MHz is 200 samples per cycle); a non-integer value (via
    ``rate_offset``) makes the grid asynchronous so that folded repetitions
    interleave, exactly the situation the modulo operation exploits.
    """

    samples_per_cycle: float = 20.0
    rate_offset: float = 1.37e-3     # fractional sample-rate mismatch
    noise_rms: float = 0.05          # AWGN std-dev (signal units)
    adc_bits: int = 10
    adc_range: float = 4.0           # full scale, signal units
    trigger_jitter_cycles: float = 0.4

    @property
    def effective_rate(self) -> float:
        """Actual samples per cycle including the rate mismatch."""
        return self.samples_per_cycle * (1.0 + self.rate_offset)


@dataclass
class RepetitionStats:
    """Delivery accounting for one repetition capture run."""

    requested: int = 0
    lost: int = 0

    @property
    def delivered(self) -> int:
        """Repetitions that actually arrived (requested minus lost)."""
        return self.requested - self.lost


class Oscilloscope:
    """Samples a continuous signal ``y(t)`` (t in device clock cycles).

    ``injector`` optionally threads a seeded
    :class:`~repro.robustness.faults.FaultInjector` into the capture
    path: capture-killing faults raise
    :class:`~repro.robustness.errors.AcquisitionError`, signal faults
    corrupt the raw samples before quantization (so saturation rails,
    exactly as on a real ADC).
    """

    #: a repetition run losing more than this fraction of its traces is
    #: reported as failed delivery rather than silently under-averaged
    MAX_LOST_FRACTION = 0.5

    def __init__(self, config: ScopeConfig,
                 rng: np.random.Generator,
                 injector: Optional[FaultInjector] = None):
        self.config = config
        self.rng = rng
        self.injector = injector
        self.last_repetition_stats = RepetitionStats()

    def _quantize(self, samples: np.ndarray) -> np.ndarray:
        config = self.config
        step = config.adc_range / (2 ** config.adc_bits)
        clipped = np.clip(samples, -config.adc_range / 2,
                          config.adc_range / 2 - step)
        return np.round(clipped / step) * step

    def capture(self, continuous: Callable[[np.ndarray], np.ndarray],
                duration_cycles: float,
                start_cycle: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Capture one trace; returns ``(sample_times, samples)``.

        ``sample_times`` are in device-clock cycles, offset by trigger
        jitter; samples include AWGN and quantization.  With a fault
        injector attached, a lost trigger or device brown-out raises
        :class:`AcquisitionError` and corrupting faults are folded in
        ahead of the ADC.
        """
        if self.injector is not None:
            self.injector.begin_capture()
        config = self.config
        count = int(duration_cycles * config.effective_rate)
        jitter = self.rng.uniform(0, config.trigger_jitter_cycles)
        times = start_cycle + jitter + \
            np.arange(count) / config.effective_rate
        samples = continuous(times)
        samples = samples + self.rng.normal(0.0, config.noise_rms,
                                            size=samples.shape)
        if self.injector is not None:
            times, samples = self.injector.corrupt(times, samples)
        return times, self._quantize(samples)

    def capture_repetitions(self,
                            continuous: Callable[[np.ndarray], np.ndarray],
                            duration_cycles: float,
                            repetitions: int,
                            batched: bool = False) -> Tuple[np.ndarray,
                                                            np.ndarray]:
        """Capture ``repetitions`` back-to-back traces of the same
        sequence, concatenated on a common absolute time axis.

        This is the paper's "executed several times (1000 times in our
        measurements)" collection loop.  Individual repetitions lost to
        trigger/brown-out faults are skipped and tallied in
        ``last_repetition_stats``; the run only fails (with
        :class:`AcquisitionError`) when more than ``MAX_LOST_FRACTION``
        of the requested traces are gone.
        """
        times_list, samples_list = self.capture_repetition_list(
            continuous, duration_cycles, repetitions, batched=batched)
        lost = self.last_repetition_stats.lost
        if not samples_list or lost > repetitions * self.MAX_LOST_FRACTION:
            raise AcquisitionError(
                f"capture run lost {lost}/{repetitions} repetitions "
                f"to trigger/brown-out faults")
        return np.concatenate(times_list), np.concatenate(samples_list)

    def capture_repetition_list(self,
                                continuous: Callable[[np.ndarray],
                                                     np.ndarray],
                                duration_cycles: float,
                                repetitions: int,
                                batched: bool = False
                                ) -> Tuple[list, list]:
        """Capture repetitions as *separate* traces (for screening).

        Returns ``(times_list, samples_list)`` of the delivered traces,
        each already shifted onto the common absolute time axis; lost
        repetitions are recorded in ``last_repetition_stats`` instead of
        raising, so the caller decides how many losses are tolerable.

        ``batched=True`` selects the vectorized collection loop
        (:meth:`_capture_repetitions_batched`), which produces
        bit-identical traces for a fraction of the wall time.
        """
        if batched:
            return self._capture_repetitions_batched(
                continuous, duration_cycles, repetitions)
        times_list: list = []
        samples_list: list = []
        lost = 0
        for repetition in range(repetitions):
            try:
                times, samples = self.capture(
                    continuous, duration_cycles,
                    start_cycle=0.0)
            except AcquisitionError:
                lost += 1
                continue
            # the sequence restarts every duration_cycles; fold later
            times_list.append(times + repetition * duration_cycles)
            samples_list.append(samples)
        self.last_repetition_stats = RepetitionStats(requested=repetitions,
                                                     lost=lost)
        return times_list, samples_list

    def _capture_repetitions_batched(self,
                                     continuous: Callable[[np.ndarray],
                                                          np.ndarray],
                                     duration_cycles: float,
                                     repetitions: int) -> Tuple[list, list]:
        """Vectorized repetition loop: one waveform evaluation for all
        repetitions.

        The sequential loop pays the continuous-waveform evaluation's
        per-call overhead once *per repetition*; this path replays the
        exact same RNG stream (trigger gating and corruption draws per
        repetition, in order), concatenates every delivered repetition's
        sampling grid, evaluates ``y(t)`` **once**, then splits, adds the
        pre-drawn noise, applies the pre-drawn corruption recipes, and
        quantizes.  Because the waveform evaluation is elementwise, the
        returned traces are bit-identical to the sequential loop's.
        """
        config = self.config
        count = int(duration_cycles * config.effective_rate)
        plans = []          # (repetition, times, noise, recipe)
        lost = 0
        for repetition in range(repetitions):
            if self.injector is not None:
                try:
                    self.injector.begin_capture()
                except AcquisitionError:
                    lost += 1
                    continue
            jitter = self.rng.uniform(0, config.trigger_jitter_cycles)
            times = jitter + np.arange(count) / config.effective_rate
            noise = self.rng.normal(0.0, config.noise_rms, size=count)
            recipe = self.injector.draw_corruption(count) \
                if self.injector is not None else None
            plans.append((repetition, times, noise, recipe))

        times_list: list = []
        samples_list: list = []
        if plans:
            values = continuous(np.concatenate([plan[1] for plan in plans]))
            offset = 0
            for repetition, times, noise, recipe in plans:
                samples = values[offset:offset + count] + noise
                offset += count
                if recipe is not None:
                    times, samples = self.injector.apply_corruption(
                        recipe, times, samples)
                times_list.append(times + repetition * duration_cycles)
                samples_list.append(self._quantize(samples))
        self.last_repetition_stats = RepetitionStats(requested=repetitions,
                                                     lost=lost)
        return times_list, samples_list
