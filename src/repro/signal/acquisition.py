"""Signal-acquisition front end: the oscilloscope model.

Stands in for the paper's Keysight DSOS804A (10 GSa/s) capturing the probe
output.  Models the practical imperfections the modulo operation has to
undo: a sampling grid asynchronous to the device clock, random trigger
offsets per repetition, additive white Gaussian noise, and finite ADC
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np


@dataclass(frozen=True)
class ScopeConfig:
    """Acquisition parameters, normalized to the device clock.

    ``samples_per_cycle`` plays the role of f_s / f_clk (e.g. the paper's
    10 GSa/s at 50 MHz is 200 samples per cycle); a non-integer value (via
    ``rate_offset``) makes the grid asynchronous so that folded repetitions
    interleave, exactly the situation the modulo operation exploits.
    """

    samples_per_cycle: float = 20.0
    rate_offset: float = 1.37e-3     # fractional sample-rate mismatch
    noise_rms: float = 0.05          # AWGN std-dev (signal units)
    adc_bits: int = 10
    adc_range: float = 4.0           # full scale, signal units
    trigger_jitter_cycles: float = 0.4

    @property
    def effective_rate(self) -> float:
        """Actual samples per cycle including the rate mismatch."""
        return self.samples_per_cycle * (1.0 + self.rate_offset)


class Oscilloscope:
    """Samples a continuous signal ``y(t)`` (t in device clock cycles)."""

    def __init__(self, config: ScopeConfig,
                 rng: np.random.Generator):
        self.config = config
        self.rng = rng

    def _quantize(self, samples: np.ndarray) -> np.ndarray:
        config = self.config
        step = config.adc_range / (2 ** config.adc_bits)
        clipped = np.clip(samples, -config.adc_range / 2,
                          config.adc_range / 2 - step)
        return np.round(clipped / step) * step

    def capture(self, continuous: Callable[[np.ndarray], np.ndarray],
                duration_cycles: float,
                start_cycle: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Capture one trace; returns ``(sample_times, samples)``.

        ``sample_times`` are in device-clock cycles, offset by trigger
        jitter; samples include AWGN and quantization.
        """
        config = self.config
        count = int(duration_cycles * config.effective_rate)
        jitter = self.rng.uniform(0, config.trigger_jitter_cycles)
        times = start_cycle + jitter + \
            np.arange(count) / config.effective_rate
        samples = continuous(times)
        samples = samples + self.rng.normal(0.0, config.noise_rms,
                                            size=samples.shape)
        return times, self._quantize(samples)

    def capture_repetitions(self,
                            continuous: Callable[[np.ndarray], np.ndarray],
                            duration_cycles: float,
                            repetitions: int) -> Tuple[np.ndarray,
                                                       np.ndarray]:
        """Capture ``repetitions`` back-to-back traces of the same
        sequence, concatenated on a common absolute time axis.

        This is the paper's "executed several times (1000 times in our
        measurements)" collection loop.
        """
        all_times = []
        all_samples = []
        for repetition in range(repetitions):
            times, samples = self.capture(
                continuous, duration_cycles,
                start_cycle=0.0)
            # the sequence restarts every duration_cycles; fold later
            all_times.append(times + repetition * duration_cycles)
            all_samples.append(samples)
        return np.concatenate(all_times), np.concatenate(all_samples)
