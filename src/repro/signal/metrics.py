"""Accuracy metrics for comparing simulated and measured signals.

The paper's headline metric (§V-A "Metric"): normalize both signals to the
same average, split into clock cycles, compute the normalized
cross-correlation of each cycle pair, and report the average across cycles —
"EMSim has about 94.1% accuracy in simulating side-channel signals".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_EPSILON = 1e-12


def normalize_energy(signal: np.ndarray) -> np.ndarray:
    """Scale a signal to unit RMS (zero signals are returned unchanged)."""
    signal = np.asarray(signal, dtype=float)
    rms = np.sqrt(np.mean(signal ** 2))
    return signal if rms < _EPSILON else signal / rms


def cross_correlation(first: np.ndarray, second: np.ndarray) -> float:
    """Zero-lag normalized cross-correlation of two equal-length signals.

    Returns a value in [-1, 1]; two near-silent segments count as perfectly
    matched (1.0), since both carry no information.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise ValueError("signals must have equal length")
    energy_first = float(np.dot(first, first))
    energy_second = float(np.dot(second, second))
    if energy_first < _EPSILON and energy_second < _EPSILON:
        return 1.0
    if energy_first < _EPSILON or energy_second < _EPSILON:
        return 0.0
    return float(np.dot(first, second) /
                 np.sqrt(energy_first * energy_second))


def per_cycle_correlations(simulated: np.ndarray, measured: np.ndarray,
                           samples_per_cycle: int) -> np.ndarray:
    """Normalized cross-correlation of each clock cycle's waveform.

    Amplitude-*insensitive*: each cycle segment is normalized separately,
    so this measures waveform-shape agreement only.
    """
    simulated = normalize_energy(simulated)
    measured = normalize_energy(measured)
    length = min(len(simulated), len(measured))
    num_cycles = length // samples_per_cycle
    correlations = np.empty(num_cycles)
    for cycle in range(num_cycles):
        start = cycle * samples_per_cycle
        stop = start + samples_per_cycle
        correlations[cycle] = cross_correlation(simulated[start:stop],
                                                measured[start:stop])
    return correlations


def per_cycle_similarities(simulated: np.ndarray, measured: np.ndarray,
                           samples_per_cycle: int) -> np.ndarray:
    """Amplitude-sensitive per-cycle waveform similarity.

    Both signals are first normalized to unit overall RMS (the paper's
    "normalize both signals to have similar average"); each cycle pair is
    then scored with the energy-normalized cross-correlation

        sim = 2 <s, r> / (<s, s> + <r, r>)

    which equals 1 only when the segments match in shape *and* amplitude.
    This is the reproduction's reading of the paper's per-cycle
    cross-correlation accuracy: the paper's degradation figures (2, 3, 5,
    6) all show *amplitude* mismatches, so the metric must penalize them.
    """
    simulated = normalize_energy(simulated)
    measured = normalize_energy(measured)
    length = min(len(simulated), len(measured))
    num_cycles = length // samples_per_cycle
    scores = np.empty(num_cycles)
    for cycle in range(num_cycles):
        start = cycle * samples_per_cycle
        stop = start + samples_per_cycle
        sim_seg = simulated[start:stop]
        meas_seg = measured[start:stop]
        energy = float(np.dot(sim_seg, sim_seg) +
                       np.dot(meas_seg, meas_seg))
        if energy < _EPSILON:
            scores[cycle] = 1.0  # two silent cycles match perfectly
            continue
        scores[cycle] = 2.0 * float(np.dot(sim_seg, meas_seg)) / energy
    return scores


def simulation_accuracy(simulated: np.ndarray, measured: np.ndarray,
                        samples_per_cycle: int) -> float:
    """The paper's accuracy metric: mean per-cycle waveform similarity.

    Negative per-cycle scores (anti-matched waveforms) are clipped at
    zero before averaging so a destructive mismatch cannot offset matched
    cycles.
    """
    scores = per_cycle_similarities(simulated, measured, samples_per_cycle)
    return float(np.clip(scores, 0.0, 1.0).mean())


def rms_error(simulated: np.ndarray, measured: np.ndarray) -> float:
    """Root-mean-square error between two signals."""
    simulated = np.asarray(simulated, dtype=float)
    measured = np.asarray(measured, dtype=float)
    length = min(len(simulated), len(measured))
    return float(np.sqrt(np.mean(
        (simulated[:length] - measured[:length]) ** 2)))


def normalized_rmse(simulated: np.ndarray, measured: np.ndarray) -> float:
    """RMSE normalized by the measured signal's RMS (lower is better)."""
    measured = np.asarray(measured, dtype=float)
    rms = np.sqrt(np.mean(measured ** 2))
    if rms < _EPSILON:
        return 0.0 if rms_error(simulated, measured) < _EPSILON else \
            float("inf")
    return rms_error(simulated, measured) / float(rms)


def amplitude_correlation(simulated: np.ndarray,
                          measured: np.ndarray) -> float:
    """Pearson correlation of per-cycle amplitude sequences."""
    simulated = np.asarray(simulated, dtype=float)
    measured = np.asarray(measured, dtype=float)
    length = min(len(simulated), len(measured))
    if length < 2:
        return 1.0
    sim = simulated[:length] - simulated[:length].mean()
    meas = measured[:length] - measured[:length].mean()
    denom = np.sqrt(np.dot(sim, sim) * np.dot(meas, meas))
    if denom < _EPSILON:
        return 1.0 if np.allclose(sim, meas) else 0.0
    return float(np.dot(sim, meas) / denom)


def match_report(simulated: np.ndarray, measured: np.ndarray,
                 samples_per_cycle: int) -> Tuple[float, float, float]:
    """(accuracy, normalized RMSE, amplitude correlation) in one call."""
    return (simulation_accuracy(simulated, measured, samples_per_cycle),
            normalized_rmse(simulated, measured),
            cross_correlation(
                normalize_energy(simulated[:len(measured)]),
                normalize_energy(measured[:len(simulated)])))
