"""Frequency-domain utilities for the SAVAT metric (paper §VI-A).

SAVAT alternates two instructions A and B with period ``t_p``, producing a
spectral spike at ``f_p = 1 / t_p``; the energy of that spike measures how
distinguishable A and B are to an attacker.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..robustness.errors import AcquisitionError, ConfigurationError


def power_spectrum(signal: np.ndarray,
                   sample_rate: float) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided power spectral density via the FFT.

    Returns ``(frequencies, power)``; a Hann window reduces leakage from
    the finite capture.
    """
    signal = np.asarray(signal, dtype=float)
    window = np.hanning(len(signal))
    window_energy = float(np.sum(window ** 2))
    if window_energy <= 0.0:
        # hanning(0) is empty and hanning(2) is all zeros
        raise AcquisitionError("capture too short: Hann window has "
                               "zero energy, no spectrum can be formed")
    spectrum = np.fft.rfft((signal - signal.mean()) * window)
    power = (np.abs(spectrum) ** 2) / window_energy
    frequencies = np.fft.rfftfreq(len(signal), d=1.0 / sample_rate)
    return frequencies, power


def spike_energy(signal: np.ndarray, sample_rate: float,
                 target_frequency: float,
                 relative_bandwidth: float = 0.15) -> float:
    """Energy of the spectral spike at ``target_frequency``.

    Integrates the PSD inside a band of ``relative_bandwidth`` around the
    target, minus the local noise floor estimated from the flanking bands —
    the "area under the curve" of the paper's SAVAT description.
    """
    frequencies, power = power_spectrum(signal, sample_rate)
    half_band = target_frequency * relative_bandwidth / 2
    in_band = (frequencies >= target_frequency - half_band) & \
        (frequencies <= target_frequency + half_band)
    if not in_band.any():
        raise ConfigurationError(
            "target frequency outside the captured spectrum")
    flank = ((frequencies >= target_frequency - 4 * half_band) &
             (frequencies < target_frequency - half_band)) | \
        ((frequencies > target_frequency + half_band) &
         (frequencies <= target_frequency + 4 * half_band))
    noise_floor = float(np.median(power[flank])) if flank.any() else 0.0
    excess = power[in_band] - noise_floor
    return float(np.clip(excess, 0.0, None).sum())


def harmonic_energy(signal: np.ndarray, sample_rate: float,
                    fundamental: float, harmonics: int = 3,
                    relative_bandwidth: float = 0.15) -> float:
    """Spike energy summed over the fundamental and its harmonics."""
    total = 0.0
    for order in range(1, harmonics + 1):
        frequency = fundamental * order
        if frequency >= sample_rate / 2:
            break
        total += spike_energy(signal, sample_rate, frequency,
                              relative_bandwidth)
    return total
