"""The "modulo operation" reference-signal extraction (paper §II-B, Eq. 1).

A sequence executing in ``noc`` clock cycles is captured many times; each
raw sample at absolute time ``T_m`` is mapped to its *modular offset*
``delta_m = mod(T_m, T_s)`` with ``T_s = noc * T_clk``, and samples sharing
an offset bin are averaged.  This removes additive noise, trigger
misalignment and under-sampling artifacts, producing the clean per-cycle
reference waveform that model training runs on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def modular_offsets(sample_times: np.ndarray,
                    period: float) -> np.ndarray:
    """Eq. 1: ``delta_m = mod(T_m, T_s)`` for each sampling time."""
    return np.mod(np.asarray(sample_times, dtype=float), period)


def modulo_average(samples: np.ndarray, sample_times: np.ndarray,
                   period: float, num_bins: int) -> Tuple[np.ndarray,
                                                          np.ndarray]:
    """Fold samples onto one period and average per offset bin.

    Returns ``(reference, counts)``: the averaged waveform on a uniform
    ``num_bins`` grid over one period, and how many raw samples landed in
    each bin.  Bins that received no samples are filled by linear
    interpolation from their neighbours.
    """
    samples = np.asarray(samples, dtype=float)
    offsets = modular_offsets(sample_times, period)
    # nearest-bin assignment keeps each bin's average centered on its grid
    # point (floor would introduce a half-bin phase lag)
    bins = np.round(offsets / period * num_bins).astype(int) % num_bins

    sums = np.bincount(bins, weights=samples, minlength=num_bins)
    counts = np.bincount(bins, minlength=num_bins)
    reference = np.zeros(num_bins)
    filled = counts > 0
    reference[filled] = sums[filled] / counts[filled]
    if not filled.all():
        if not filled.any():
            # imported here, not at module top: robustness.health
            # imports this module, so a top-level errors import would
            # be a hard import cycle.
            from ..robustness.errors import AcquisitionError
            raise AcquisitionError("no samples fell into any bin")
        grid = np.arange(num_bins)
        reference[~filled] = np.interp(grid[~filled], grid[filled],
                                       reference[filled], period=num_bins)
    return reference, counts


def fold_repetitions(samples: np.ndarray, sample_times: np.ndarray,
                     clock_period: float, num_cycles: int,
                     samples_per_cycle: int) -> np.ndarray:
    """Convenience wrapper: reference waveform for a ``num_cycles``-long
    sequence on the standard ``samples_per_cycle`` grid."""
    period = num_cycles * clock_period
    reference, _ = modulo_average(samples, sample_times, period,
                                  num_cycles * samples_per_cycle)
    return reference
