"""Per-cycle reconstruction kernels (paper §II-C, Eq. 2-6).

A kernel is the continuous shape one clock cycle's worth of switching
activity contributes to the analog EM signal.  The paper compares three:

* zero-order hold (``rect``, Eq. 2) — activity spread evenly over the cycle;
* decaying exponential (Eq. 3/4) — switching bursts right after the clock
  edge;
* damped sinusoid (Eq. 5/6) — adds the oscillation observed in real
  signals; this is the kernel EMSim uses.

Time is normalized to clock cycles: ``tau = t / T_clk``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=256)
def sampled_response(kernel: "Kernel",
                     samples_per_cycle: int) -> np.ndarray:
    """Cached discrete impulse response of ``kernel`` at a resolution.

    Kernels are frozen (hashable) dataclasses, so the sampled response
    for a given ``(kernel, samples_per_cycle)`` pair is computed once per
    process and shared by every trace of a campaign — the batch engine's
    "precompute the kernel matrix per sampling config" optimization
    starts here.  The returned array is marked read-only; callers that
    need to mutate it must copy.
    """
    length = int(np.ceil(kernel.support_cycles * samples_per_cycle))
    tau = np.arange(length) / samples_per_cycle
    response = np.asarray(kernel.evaluate(tau), dtype=float)
    response.setflags(write=False)
    return response


@dataclass(frozen=True)
class Kernel:
    """Base class for reconstruction kernels.

    ``support_cycles`` bounds where the kernel is non-negligible, so
    convolution can be truncated.
    """

    support_cycles: float = 3.0

    def evaluate(self, tau: np.ndarray) -> np.ndarray:
        """Kernel value at normalized time offsets ``tau`` (cycles)."""
        raise NotImplementedError

    def sampled(self, samples_per_cycle: int) -> np.ndarray:
        """Discrete impulse response over the support, one entry per
        sample at ``samples_per_cycle`` resolution (cached per kernel +
        resolution; the array is read-only)."""
        return sampled_response(self, samples_per_cycle)


@dataclass(frozen=True)
class RectKernel(Kernel):
    """Zero-order hold: rect((t - T/2) / T), Eq. 2."""

    duration: float = 1.0
    support_cycles: float = 1.0

    def evaluate(self, tau: np.ndarray) -> np.ndarray:
        """1 inside the hold window [0, duration), 0 elsewhere."""
        tau = np.asarray(tau, dtype=float)
        return np.where((tau >= 0.0) & (tau < self.duration), 1.0, 0.0)


@dataclass(frozen=True)
class ExpKernel(Kernel):
    """Decaying exponential e^(-theta * tau) * u(tau), Eq. 3."""

    theta: float = 4.0
    support_cycles: float = 3.0

    def evaluate(self, tau: np.ndarray) -> np.ndarray:
        """Causal exponential decay at offsets ``tau``."""
        tau = np.asarray(tau, dtype=float)
        return np.where(tau >= 0.0, np.exp(-self.theta * tau), 0.0)


@dataclass(frozen=True)
class DampedSineKernel(Kernel):
    """sin(2*pi*tau / t0 + phase) * e^(-theta * tau) * u(tau), Eq. 5.

    ``t0`` is the oscillation period in cycles (the paper's T0 / T_clk);
    ``theta`` the per-cycle decay rate.  ``phase`` (radians) models the
    wave's polarization/phase at the probe — EM sources with different
    phases superpose constructively or destructively (paper §III-C).
    """

    t0: float = 0.25
    theta: float = 4.0
    phase: float = 0.0
    support_cycles: float = 3.0

    def evaluate(self, tau: np.ndarray) -> np.ndarray:
        """Causal damped sinusoid (Eq. 5) at offsets ``tau``."""
        tau = np.asarray(tau, dtype=float)
        value = np.sin(2.0 * np.pi * tau / self.t0 + self.phase) * \
            np.exp(-self.theta * tau)
        return np.where(tau >= 0.0, value, 0.0)


DEFAULT_KERNEL = DampedSineKernel()
"""The kernel EMSim uses by default (the paper's best, Fig. 1)."""


def make_kernel(kind: str, **params) -> Kernel:
    """Factory: ``rect`` | ``exp`` | ``damped-sine``."""
    if kind == "rect":
        return RectKernel(**params)
    if kind == "exp":
        return ExpKernel(**params)
    if kind == "damped-sine":
        return DampedSineKernel(**params)
    raise ValueError(f"unknown kernel kind: {kind!r}")
