"""Analog-signal reconstruction from per-cycle amplitudes, and the inverse.

Forward direction (Eq. 6 of the paper): given per-cycle amplitudes ``x[n]``
and a kernel ``f``, synthesize ``y(t) = sum_n x[n] f(t - n)``.

Inverse direction (used during model *training*): given a captured waveform,
estimate the per-cycle amplitudes by least-squares deconvolution against the
kernel — this is how the paper extracts per-stage amplitudes ``A`` and
measured activity factors ``alpha = A_meas / A_simul`` from reference
signals.

Both directions run on plan-cached engines (see docs/architecture.md,
"Signal fast path").  Synthesis decomposes Eq. 6 into ``samples_per_cycle``
polyphase sub-kernels and either scatters them time-domain (short kernel
support) or multiplies cached per-phase spectra (long support); the seed's
``np.convolve`` evaluation survives as the ``method="direct"`` oracle.
Deconvolution exploits that the normal-equations Gram ``K^T K + ridge*I``
is a symmetric banded (near-Toeplitz) matrix: the band is built directly
from the kernel autocorrelation — no sparse operator is materialized — and
its Cholesky factor is cached per geometry.  The seed's sparse-LU engine
survives as the ``method="lu"`` legacy oracle and ``method="direct"`` keeps
the original uncached ``spsolve`` path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.linalg import cho_solve_banded, cholesky_banded
from scipy.sparse.linalg import splu, spsolve

from ..observability.metrics import get_metrics
from ..profiling import get_profiler
from ..robustness.errors import ConfigurationError
from .kernels import Kernel


# ---------------------------------------------------------------------------
# bounded plan caches (observable LRU)
# ---------------------------------------------------------------------------
class PlanCache:
    """Bounded LRU mapping geometry keys to prepared engine plans.

    Replaces the seed's unbounded ``lru_cache`` factor memoization:
    eviction keeps the resident factor memory proportional to the number
    of *distinct* geometries in flight, and lookups report hit/miss/evict
    through :class:`~repro.observability.metrics.MetricsRegistry` at the
    call sites (literal names, so the docs/observability.md name table
    stays checkable by repro-lint A502).
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def lookup(self, key: Hashable) -> Optional[object]:
        """Return the cached plan for ``key`` (refreshing LRU) or None."""
        plan = self._entries.get(key)
        if plan is not None:
            self._entries.move_to_end(key)
        return plan

    def store(self, key: Hashable, plan: object) -> bool:
        """Insert ``plan`` under ``key``; True if an entry was evicted."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            return True
        return False

    def clear(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_SYNTH_PLANS = PlanCache(maxsize=64)
_DECONV_PLANS = PlanCache(maxsize=128)
_LU_PLANS = PlanCache(maxsize=64)

#: polyphase sub-kernel count at or above which the planner prefers the
#: spectral path over the time-domain scatter (short EMSim kernels — a few
#: cycles of support — scatter faster than any FFT at realistic lengths).
_SPECTRAL_SUPPORT_THRESHOLD = 16


def clear_plan_caches() -> None:
    """Reset every signal-engine plan cache (test isolation hook)."""
    _SYNTH_PLANS.clear()
    _DECONV_PLANS.clear()
    _LU_PLANS.clear()


def plan_cache_sizes() -> Dict[str, int]:
    """Current entry counts of the signal plan caches (introspection)."""
    return {"synthesis": len(_SYNTH_PLANS),
            "deconvolution": len(_DECONV_PLANS),
            "lu": len(_LU_PLANS)}


# ---------------------------------------------------------------------------
# synthesis (Eq. 6 forward direction)
# ---------------------------------------------------------------------------
def _polyphase_chunks(kernel: Kernel,
                      samples_per_cycle: int) -> np.ndarray:
    """Kernel response split into per-cycle rows of shape (K, spc).

    Row ``k`` holds ``response[k*spc:(k+1)*spc]`` zero-padded — the
    contribution one cycle's amplitude makes to the ``k``-th later cycle's
    sample window.
    """
    response = kernel.sampled(samples_per_cycle)
    support = max(1, -(-len(response) // samples_per_cycle))
    padded = np.zeros(support * samples_per_cycle)
    padded[:len(response)] = response
    return padded.reshape(support, samples_per_cycle)


class SynthesisPlan:
    """Prepared synthesis state for one ``(kernel, spc, bucket)`` geometry.

    Holds the polyphase chunk matrix for the time-domain scatter and, when
    the planner selects the spectral path, the cached per-phase kernel
    spectra at the bucketed FFT length.
    """

    __slots__ = ("samples_per_cycle", "chunks", "use_fft", "fft_length",
                 "spectra", "_scratch")

    def __init__(self, kernel: Kernel, samples_per_cycle: int,
                 bucket_cycles: int, spectral: bool) -> None:
        self.samples_per_cycle = int(samples_per_cycle)
        self.chunks = _polyphase_chunks(kernel, samples_per_cycle)
        self._scratch = None
        self.use_fft = bool(spectral)
        if spectral:
            support = self.chunks.shape[0]
            length = 1
            while length < bucket_cycles + support:
                length <<= 1
            self.fft_length = length
            self.spectra = np.fft.rfft(self.chunks, n=length, axis=0).T
        else:
            self.fft_length = 0
            self.spectra = None

    def _scratch_rows(self, cycles: int) -> np.ndarray:
        """A reusable ``(cycles, spc)`` work buffer for the scatter path.

        The buffer only ever grows; every use fully overwrites it, so
        reuse cannot leak state between traces.
        """
        if self._scratch is None or len(self._scratch) < cycles:
            self._scratch = np.empty((cycles, self.samples_per_cycle))
        return self._scratch[:cycles]

    def synthesize(self, amplitudes: np.ndarray) -> np.ndarray:
        """Run Eq. 6 for one amplitude vector on the planned path."""
        if self.use_fft:
            return _spectral_synthesize(amplitudes, self)
        return _overlap_add_synthesize(amplitudes, self.chunks,
                                       self._scratch_rows(len(amplitudes)))


def _length_bucket(num_cycles: int) -> int:
    """Bucket a trace length so nearby lengths share one spectral plan."""
    bucket = 64
    while bucket < num_cycles:
        bucket <<= 1
    return bucket


def _synthesis_plan(kernel: Kernel, samples_per_cycle: int,
                    num_cycles: int, spectral: bool) -> SynthesisPlan:
    """Fetch (or build) the synthesis plan for one geometry."""
    registry = get_metrics()
    if spectral:
        key = (kernel, samples_per_cycle, _length_bucket(num_cycles), True)
    else:
        key = (kernel, samples_per_cycle, 0, False)
    plan = _SYNTH_PLANS.lookup(key)
    if plan is not None:
        registry.increment("signal.synth.cache.hits")
        return plan  # type: ignore[return-value]
    registry.increment("signal.synth.cache.misses")
    plan = SynthesisPlan(kernel, samples_per_cycle,
                         _length_bucket(num_cycles) if spectral else 0,
                         spectral)
    if _SYNTH_PLANS.store(key, plan):
        registry.increment("signal.synth.cache.evictions")
    return plan


def _overlap_add_synthesize(amplitudes: np.ndarray, chunks: np.ndarray,
                            scratch: np.ndarray) -> np.ndarray:
    """Time-domain polyphase scatter: Eq. 6 without the full convolution.

    Each cycle's amplitude scales the (short) kernel chunk rows into an
    overlap-add accumulator viewed as ``(cycles + support, spc)`` — K
    vectorized row-scatters instead of an O(len * support * spc) direct
    convolution.  The first row writes straight into the accumulator
    (only the K-row tail needs zeroing) and later rows stage through the
    plan's ``scratch`` buffer, so the hot path allocates exactly one
    output-sized array per trace.
    """
    cycles = len(amplitudes)
    support, samples_per_cycle = chunks.shape
    accumulator = np.empty((cycles + support) * samples_per_cycle)
    rows = accumulator.reshape(cycles + support, samples_per_cycle)
    column = amplitudes[:, None]
    np.multiply(column, chunks[0], out=rows[:cycles])
    rows[cycles:] = 0.0
    for shift in range(1, support):
        np.multiply(column, chunks[shift], out=scratch)
        rows[shift:shift + cycles] += scratch
    return accumulator[:cycles * samples_per_cycle]


def _spectral_synthesize(amplitudes: np.ndarray,
                         plan: SynthesisPlan) -> np.ndarray:
    """Frequency-domain polyphase synthesis on a plan's cached spectra.

    One forward FFT of the amplitude vector multiplies all per-phase
    kernel spectra at once; the inverse transform lands each phase's
    sample stream, interleaved back onto the uniform grid.
    """
    cycles = len(amplitudes)
    spectrum = np.fft.rfft(amplitudes, plan.fft_length)
    phases = np.fft.irfft(spectrum[None, :] * plan.spectra,
                          plan.fft_length, axis=1)
    return phases[:, :cycles].T.ravel()


def _direct_reconstruct(amplitudes: np.ndarray, kernel: Kernel,
                        samples_per_cycle: int) -> np.ndarray:
    """The seed's Eq. 6 evaluation — the sanctioned direct-convolution
    oracle (repro-lint P602 exempts exactly this call site)."""
    impulse_train = np.zeros(len(amplitudes) * samples_per_cycle)
    impulse_train[::samples_per_cycle] = amplitudes
    response = kernel.sampled(samples_per_cycle)
    signal = np.convolve(impulse_train, response)
    return signal[:len(impulse_train)]


_SYNTH_METHODS = ("auto", "fft", "direct")


def _synthesize(amplitudes: np.ndarray, kernel: Kernel,
                samples_per_cycle: int, method: str) -> np.ndarray:
    """Dispatch one amplitude vector through the selected synthesis path."""
    if method == "direct":
        return _direct_reconstruct(amplitudes, kernel, samples_per_cycle)
    plan = _synthesis_plan(kernel, samples_per_cycle, len(amplitudes),
                           spectral=(method == "fft" or
                                     _polyphase_rows(kernel,
                                                     samples_per_cycle)
                                     >= _SPECTRAL_SUPPORT_THRESHOLD))
    return plan.synthesize(amplitudes)


def _polyphase_rows(kernel: Kernel, samples_per_cycle: int) -> int:
    """Number of polyphase sub-kernel rows (cycle support) for a kernel."""
    return max(1, -(-len(kernel.sampled(samples_per_cycle))
                    // samples_per_cycle))


def _check_synth_method(method: Optional[str]) -> str:
    """Validate and default a synthesis method selector."""
    if method is None:
        return "auto"
    if method not in _SYNTH_METHODS:
        raise ConfigurationError(
            f"unknown synthesis method {method!r}; "
            f"expected one of {_SYNTH_METHODS}")
    return method


def reconstruct(amplitudes: np.ndarray, kernel: Kernel,
                samples_per_cycle: int,
                method: Optional[str] = None) -> np.ndarray:
    """Synthesize the waveform for per-cycle amplitudes (Eq. 6).

    Returns ``len(amplitudes) * samples_per_cycle`` samples on the uniform
    grid; kernel energy beyond the last cycle is truncated.

    ``method`` selects the engine: ``"auto"`` (default) plans a polyphase
    overlap-add scatter for short-support kernels and a cached-spectra FFT
    path for long ones; ``"fft"`` forces the spectral path; ``"direct"``
    is the seed's ``np.convolve`` oracle.  All paths agree to well inside
    1e-9 (asserted in tests and in ``repro bench --mode signal``).
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    return _synthesize(amplitudes, kernel, samples_per_cycle,
                       _check_synth_method(method))


def reconstruct_at(amplitudes: np.ndarray, kernel: Kernel,
                   times: np.ndarray) -> np.ndarray:
    """Evaluate ``y(t) = sum_n x[n] f(t - n)`` at arbitrary times.

    ``times`` are in cycle units; used by the scope model, whose sampling
    grid is asynchronous to the device clock.
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    times = np.asarray(times, dtype=float)
    result = np.zeros_like(times)
    support = int(np.ceil(kernel.support_cycles))
    base_cycle = np.floor(times).astype(int)
    for lag in range(support + 1):
        cycle = base_cycle - lag
        valid = (cycle >= 0) & (cycle < len(amplitudes))
        tau = times[valid] - cycle[valid]
        result[valid] += amplitudes[cycle[valid]] * kernel.evaluate(tau)
    return result


def batch_reconstruct(amplitude_sets: Sequence[np.ndarray], kernel: Kernel,
                      samples_per_cycle: int,
                      method: Optional[str] = None) -> List[np.ndarray]:
    """Synthesize waveforms for many per-cycle amplitude vectors (Eq. 6).

    Each trace runs through exactly the same planned engine as
    :func:`reconstruct` (the plan is cached, so the batch resolves it
    once per geometry) — per-trace outputs are bit-identical to the
    sequential path, whichever ``method`` is selected.
    """
    profiler = get_profiler()
    method = _check_synth_method(method)
    signals = []
    with profiler.phase("signal.batch_reconstruct"):
        for amplitudes in amplitude_sets:
            amplitudes = np.asarray(amplitudes, dtype=float)
            signals.append(_synthesize(amplitudes, kernel,
                                       samples_per_cycle, method))
    profiler.count("batch_reconstructions", len(amplitude_sets))
    return signals


# ---------------------------------------------------------------------------
# deconvolution (inverse direction; the campaign hot path)
# ---------------------------------------------------------------------------
def _kernel_operator(num_cycles: int, kernel: Kernel,
                     samples_per_cycle: int) -> sparse.csr_matrix:
    """Sparse linear operator mapping per-cycle amplitudes to samples.

    Only the legacy LU / direct oracle paths materialize this; the banded
    engine works from the kernel autocorrelation alone.
    """
    response = kernel.sampled(samples_per_cycle)
    num_samples = num_cycles * samples_per_cycle
    rows, cols, vals = [], [], []
    for cycle in range(num_cycles):
        start = cycle * samples_per_cycle
        stop = min(start + len(response), num_samples)
        count = stop - start
        rows.extend(range(start, stop))
        cols.extend([cycle] * count)
        vals.extend(response[:count])
    return sparse.csr_matrix((vals, (rows, cols)),
                             shape=(num_samples, num_cycles))


class DeconvPlan:
    """Prepared banded normal-equations solver for one geometry.

    The Gram matrix ``K^T K`` of the kernel convolution operator is
    symmetric with half-bandwidth ``support - 1`` and is Toeplitz except
    for end effects where the operator's columns truncate at the signal
    boundary.  The band is assembled directly from shifted products of
    the padded kernel response (cumulative sums give every column's
    truncated inner product in one vectorized pass), ridge-shifted, and
    Cholesky-factored once; every solve is then two banded triangular
    sweeps.
    """

    __slots__ = ("num_cycles", "samples_per_cycle", "chunks", "factor")

    def __init__(self, kernel: Kernel, samples_per_cycle: int,
                 num_cycles: int, ridge: float) -> None:
        self.num_cycles = int(num_cycles)
        self.samples_per_cycle = int(samples_per_cycle)
        self.chunks = _polyphase_chunks(kernel, samples_per_cycle)
        support = self.chunks.shape[0]
        padded = self.chunks.ravel()
        half_bandwidth = min(support - 1, num_cycles - 1)
        band = np.zeros((half_bandwidth + 1, num_cycles))
        for lag in range(half_bandwidth + 1):
            shift = lag * samples_per_cycle
            products = padded[shift:] * padded[:padded.size - shift]
            sums = np.concatenate(([0.0], np.cumsum(products)))
            columns = np.arange(lag, num_cycles)
            available = np.minimum(
                products.size,
                (num_cycles - columns) * samples_per_cycle)
            band[half_bandwidth - lag, columns] = sums[available]
        band[half_bandwidth] += ridge
        self.factor = cholesky_banded(band, lower=False)

    def solve(self, signals_matrix: np.ndarray) -> np.ndarray:
        """Amplitudes for stacked signals of shape (count, samples)."""
        rhs = _banded_rhs(signals_matrix, self.chunks, self.num_cycles)
        return cho_solve_banded((self.factor, False), rhs.T).T


def _banded_rhs(signals_matrix: np.ndarray, chunks: np.ndarray,
                num_cycles: int) -> np.ndarray:
    """Compute ``K^T y`` for stacked signals without materializing ``K``.

    Cycle ``c``'s entry correlates the kernel chunk rows against the
    signal windows at cycles ``c .. c+support-1`` — a handful of blocked
    matrix-vector products over the ``(count, cycles, spc)`` view.
    """
    count = signals_matrix.shape[0]
    samples_per_cycle = chunks.shape[1]
    blocks = signals_matrix.reshape(count, num_cycles, samples_per_cycle)
    out = np.zeros((count, num_cycles))
    for shift in range(min(chunks.shape[0], num_cycles)):
        out[:, :num_cycles - shift] += blocks[:, shift:, :] @ chunks[shift]
    return out


def _deconv_plan(kernel: Kernel, samples_per_cycle: int,
                 num_cycles: int, ridge: float) -> DeconvPlan:
    """Fetch (or build) the banded deconvolution plan for one geometry."""
    registry = get_metrics()
    key = (kernel, samples_per_cycle, num_cycles, ridge)
    plan = _DECONV_PLANS.lookup(key)
    if plan is not None:
        registry.increment("signal.deconv.cache.hits")
        return plan  # type: ignore[return-value]
    registry.increment("signal.deconv.cache.misses")
    plan = DeconvPlan(kernel, samples_per_cycle, num_cycles, ridge)
    if _DECONV_PLANS.store(key, plan):
        registry.increment("signal.deconv.cache.evictions")
    return plan


def _cached_deconvolver(num_cycles: int, kernel: Kernel,
                        samples_per_cycle: int,
                        ridge: float) -> Tuple[sparse.csr_matrix, object]:
    """Cached ``(operator, LU(gram))`` pair — the legacy oracle engine.

    The seed memoized this through an unbounded ``lru_cache(512)`` that
    pinned every LU factor ever built; the bounded :class:`PlanCache`
    keeps the same key soundness (kernels are frozen dataclasses) while
    reporting ``signal.deconv.cache.*`` occupancy to observability and
    evicting cold geometries.
    """
    registry = get_metrics()
    key = ("lu", num_cycles, kernel, samples_per_cycle, ridge)
    pair = _LU_PLANS.lookup(key)
    if pair is not None:
        registry.increment("signal.deconv.cache.hits")
        return pair  # type: ignore[return-value]
    registry.increment("signal.deconv.cache.misses")
    operator = _kernel_operator(num_cycles, kernel, samples_per_cycle)
    gram = (operator.T @ operator +
            ridge * sparse.identity(num_cycles, format="csr"))
    pair = (operator, splu(gram.tocsc()))
    if _LU_PLANS.store(key, pair):
        registry.increment("signal.deconv.cache.evictions")
    return pair


_DECONV_METHODS = ("banded", "lu", "direct")


def _check_deconv_method(method: Optional[str], cached: bool) -> str:
    """Validate and default a deconvolution method selector.

    ``method=None`` selects the banded engine — the ``cached`` legacy
    flag now only changes which *oracle* an explicit ``method="lu"``
    request would have picked, so flag-free callers all land on the one
    (deterministic) default path.
    """
    if method is None:
        return "lu" if cached else "banded"
    if method not in _DECONV_METHODS:
        raise ConfigurationError(
            f"unknown deconvolution method {method!r}; "
            f"expected one of {_DECONV_METHODS}")
    return method


def _check_signal_alignment(length: int, samples_per_cycle: int) -> int:
    """Cycle count for an aligned signal; ConfigurationError otherwise."""
    if length % samples_per_cycle:
        raise ConfigurationError("signal length must be a multiple of "
                                 "samples_per_cycle")
    return length // samples_per_cycle


def estimate_cycle_amplitudes(signal: np.ndarray, kernel: Kernel,
                              samples_per_cycle: int,
                              ridge: float = 1e-9,
                              cached: bool = False,
                              method: Optional[str] = None) -> np.ndarray:
    """Least-squares estimate of per-cycle amplitudes from a waveform.

    Solves ``min_x ||K x - y||^2 + ridge ||x||^2`` where ``K`` is the
    kernel convolution operator.  The tiny ridge keeps the system
    well-posed for kernels with weak tails.

    ``method`` selects the engine: ``"banded"`` (default) solves the
    symmetric banded normal equations via a cached Cholesky band factor;
    ``"lu"`` is the legacy memoized sparse-LU oracle (what ``cached=True``
    selected before the banded engine existed — the flag now picks the LU
    oracle only when no explicit method is given, for back-compat);
    ``"direct"`` rebuilds and ``spsolve``s the sparse system from scratch,
    bit-exact with the seed.  All engines agree to well inside 1e-9.
    """
    signal = np.asarray(signal, dtype=float)
    num_cycles = _check_signal_alignment(len(signal), samples_per_cycle)
    method = _check_deconv_method(method, cached)
    if method == "banded":
        plan = _deconv_plan(kernel, samples_per_cycle, num_cycles,
                            float(ridge))
        return np.ascontiguousarray(
            plan.solve(signal.reshape(1, -1))[0])
    if method == "lu":
        operator, solver = _cached_deconvolver(
            num_cycles, kernel, samples_per_cycle, float(ridge))
        return np.asarray(solver.solve(operator.T @ signal)).ravel()
    operator = _kernel_operator(num_cycles, kernel, samples_per_cycle)
    gram = (operator.T @ operator +
            ridge * sparse.identity(num_cycles, format="csr"))
    rhs = operator.T @ signal
    return np.asarray(spsolve(gram.tocsc(), rhs)).ravel()


def batch_estimate_cycle_amplitudes(signals: Sequence[np.ndarray],
                                    kernel: Kernel,
                                    samples_per_cycle: int,
                                    ridge: float = 1e-9,
                                    method: Optional[str] = None
                                    ) -> List[np.ndarray]:
    """Deconvolve per-cycle amplitudes for a whole batch of waveforms.

    Groups the signals by length and solves each geometry's stacked
    right-hand sides through the same engine as
    :func:`estimate_cycle_amplitudes` (banded Cholesky by default, plan
    cached across calls; ``method="lu"`` runs the legacy multi-RHS
    sparse-LU oracle).  Results match the sequential path to the
    solver's roundoff (well inside 1e-9) and come back in input order.
    """
    profiler = get_profiler()
    method = _check_deconv_method(method, cached=False)
    signals = [np.asarray(signal, dtype=float) for signal in signals]
    groups: Dict[int, List[int]] = {}
    for index, signal in enumerate(signals):
        _check_signal_alignment(len(signal), samples_per_cycle)
        groups.setdefault(len(signal), []).append(index)
    results: List[np.ndarray] = [None] * len(signals)  # type: ignore
    with profiler.phase("signal.batch_estimate"):
        for length, indices in groups.items():
            num_cycles = length // samples_per_cycle
            if method == "banded":
                plan = _deconv_plan(kernel, samples_per_cycle,
                                    num_cycles, float(ridge))
                stacked = np.stack([signals[i] for i in indices])
                solution = plan.solve(stacked)
            elif method == "lu":
                operator, solver = _cached_deconvolver(
                    num_cycles, kernel, samples_per_cycle, float(ridge))
                columns = np.column_stack([signals[i] for i in indices])
                solution = solver.solve(operator.T @ columns)
                solution = np.atleast_2d(solution.T).reshape(
                    len(indices), num_cycles)
            else:
                solution = np.stack([
                    estimate_cycle_amplitudes(
                        signals[i], kernel, samples_per_cycle,
                        ridge=ridge, method="direct")
                    for i in indices])
            for row, index in enumerate(indices):
                results[index] = np.ascontiguousarray(solution[row])
    profiler.count("batch_deconvolutions", len(signals))
    return results


def peak_amplitudes(signal: np.ndarray,
                    samples_per_cycle: int) -> np.ndarray:
    """Cheap alternative estimator: max |signal| within each cycle."""
    signal = np.asarray(signal, dtype=float)
    num_cycles = len(signal) // samples_per_cycle
    segments = signal[:num_cycles * samples_per_cycle].reshape(
        num_cycles, samples_per_cycle)
    return np.abs(segments).max(axis=1)
