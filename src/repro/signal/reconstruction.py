"""Analog-signal reconstruction from per-cycle amplitudes, and the inverse.

Forward direction (Eq. 6 of the paper): given per-cycle amplitudes ``x[n]``
and a kernel ``f``, synthesize ``y(t) = sum_n x[n] f(t - n)``.

Inverse direction (used during model *training*): given a captured waveform,
estimate the per-cycle amplitudes by least-squares deconvolution against the
kernel — this is how the paper extracts per-stage amplitudes ``A`` and
measured activity factors ``alpha = A_meas / A_simul`` from reference
signals.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu, spsolve

from ..profiling import get_profiler
from ..robustness.errors import ConfigurationError
from .kernels import Kernel


def reconstruct(amplitudes: np.ndarray, kernel: Kernel,
                samples_per_cycle: int) -> np.ndarray:
    """Synthesize the waveform for per-cycle amplitudes (Eq. 6).

    Returns ``len(amplitudes) * samples_per_cycle`` samples on the uniform
    grid; kernel energy beyond the last cycle is truncated.
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    impulse_train = np.zeros(len(amplitudes) * samples_per_cycle)
    impulse_train[::samples_per_cycle] = amplitudes
    response = kernel.sampled(samples_per_cycle)
    signal = np.convolve(impulse_train, response)
    return signal[:len(impulse_train)]


def reconstruct_at(amplitudes: np.ndarray, kernel: Kernel,
                   times: np.ndarray) -> np.ndarray:
    """Evaluate ``y(t) = sum_n x[n] f(t - n)`` at arbitrary times.

    ``times`` are in cycle units; used by the scope model, whose sampling
    grid is asynchronous to the device clock.
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    times = np.asarray(times, dtype=float)
    result = np.zeros_like(times)
    support = int(np.ceil(kernel.support_cycles))
    base_cycle = np.floor(times).astype(int)
    for lag in range(support + 1):
        cycle = base_cycle - lag
        valid = (cycle >= 0) & (cycle < len(amplitudes))
        tau = times[valid] - cycle[valid]
        result[valid] += amplitudes[cycle[valid]] * kernel.evaluate(tau)
    return result


def _kernel_operator(num_cycles: int, kernel: Kernel,
                     samples_per_cycle: int) -> sparse.csr_matrix:
    """Sparse linear operator mapping per-cycle amplitudes to samples."""
    response = kernel.sampled(samples_per_cycle)
    num_samples = num_cycles * samples_per_cycle
    rows, cols, vals = [], [], []
    for cycle in range(num_cycles):
        start = cycle * samples_per_cycle
        stop = min(start + len(response), num_samples)
        count = stop - start
        rows.extend(range(start, stop))
        cols.extend([cycle] * count)
        vals.extend(response[:count])
    return sparse.csr_matrix((vals, (rows, cols)),
                             shape=(num_samples, num_cycles))


def estimate_cycle_amplitudes(signal: np.ndarray, kernel: Kernel,
                              samples_per_cycle: int,
                              ridge: float = 1e-9,
                              cached: bool = False) -> np.ndarray:
    """Least-squares estimate of per-cycle amplitudes from a waveform.

    Solves ``min_x ||K x - y||^2 + ridge ||x||^2`` where ``K`` is the
    kernel convolution operator.  The tiny ridge keeps the system
    well-posed for kernels with weak tails.

    ``cached=True`` reuses the memoized operator + LU factorization for
    this problem geometry (the same engine the batched campaign path
    runs on) instead of building and factoring the normal equations
    afresh — the trainer's fast path.  Both solvers run SuperLU on the
    identical system, so results agree to ~1e-12; the default stays
    uncached to keep the legacy scalar path bit-exact.
    """
    signal = np.asarray(signal, dtype=float)
    if len(signal) % samples_per_cycle:
        raise ConfigurationError("signal length must be a multiple of "
                                 "samples_per_cycle")
    num_cycles = len(signal) // samples_per_cycle
    if cached:
        operator, solver = _cached_deconvolver(
            num_cycles, kernel, samples_per_cycle, float(ridge))
        return np.asarray(solver.solve(operator.T @ signal)).ravel()
    operator = _kernel_operator(num_cycles, kernel, samples_per_cycle)
    gram = (operator.T @ operator +
            ridge * sparse.identity(num_cycles, format="csr"))
    rhs = operator.T @ signal
    return np.asarray(spsolve(gram.tocsc(), rhs)).ravel()


def peak_amplitudes(signal: np.ndarray,
                    samples_per_cycle: int) -> np.ndarray:
    """Cheap alternative estimator: max |signal| within each cycle."""
    signal = np.asarray(signal, dtype=float)
    num_cycles = len(signal) // samples_per_cycle
    segments = signal[:num_cycles * samples_per_cycle].reshape(
        num_cycles, samples_per_cycle)
    return np.abs(segments).max(axis=1)


# ---------------------------------------------------------------------------
# batched / cached deconvolution (the campaign hot path)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=512)
def _cached_deconvolver(num_cycles: int, kernel: Kernel,
                        samples_per_cycle: int, ridge: float):
    """Cached ``(operator, LU(gram))`` pair for one problem geometry.

    Sequential training re-derives the sparse kernel operator and
    re-factorizes the normal equations for *every* probe; a campaign of
    N same-length probes repeats identical work N times.  Kernels are
    frozen dataclasses, so ``(num_cycles, kernel, spc, ridge)`` is a
    sound cache key; the LU factorization is computed once and reused
    for every right-hand side.
    """
    operator = _kernel_operator(num_cycles, kernel, samples_per_cycle)
    gram = (operator.T @ operator +
            ridge * sparse.identity(num_cycles, format="csr"))
    return operator, splu(gram.tocsc())


def batch_estimate_cycle_amplitudes(signals: Sequence[np.ndarray],
                                    kernel: Kernel,
                                    samples_per_cycle: int,
                                    ridge: float = 1e-9
                                    ) -> List[np.ndarray]:
    """Deconvolve per-cycle amplitudes for a whole batch of waveforms.

    Groups the signals by length, factorizes each geometry's normal
    equations once (cached across calls), and solves all of a group's
    right-hand sides in a single multi-RHS triangular solve.  Results
    match :func:`estimate_cycle_amplitudes` to the solver's roundoff
    (well inside 1e-9) and come back in input order.
    """
    profiler = get_profiler()
    signals = [np.asarray(signal, dtype=float) for signal in signals]
    groups: dict = {}
    for index, signal in enumerate(signals):
        if len(signal) % samples_per_cycle:
            raise ValueError("signal length must be a multiple of "
                             "samples_per_cycle")
        groups.setdefault(len(signal), []).append(index)
    results: List[np.ndarray] = [None] * len(signals)  # type: ignore
    with profiler.phase("signal.batch_estimate"):
        for length, indices in groups.items():
            num_cycles = length // samples_per_cycle
            operator, solver = _cached_deconvolver(
                num_cycles, kernel, samples_per_cycle, float(ridge))
            stacked = np.column_stack([signals[i] for i in indices])
            solution = solver.solve(operator.T @ stacked)
            solution = np.atleast_2d(solution.T).reshape(len(indices),
                                                         num_cycles)
            for column, index in enumerate(indices):
                results[index] = np.ascontiguousarray(solution[column])
    profiler.count("batch_deconvolutions", len(signals))
    return results


def batch_reconstruct(amplitude_sets: Sequence[np.ndarray], kernel: Kernel,
                      samples_per_cycle: int) -> List[np.ndarray]:
    """Synthesize waveforms for many per-cycle amplitude vectors (Eq. 6).

    The kernel's sampled response is resolved once (and cached at the
    kernel layer), then each trace is convolved exactly as
    :func:`reconstruct` would — per-trace outputs are bit-identical to
    the sequential path.
    """
    profiler = get_profiler()
    response = kernel.sampled(samples_per_cycle)
    signals = []
    with profiler.phase("signal.batch_reconstruct"):
        for amplitudes in amplitude_sets:
            amplitudes = np.asarray(amplitudes, dtype=float)
            impulse_train = np.zeros(len(amplitudes) * samples_per_cycle)
            impulse_train[::samples_per_cycle] = amplitudes
            signal = np.convolve(impulse_train, response)
            signals.append(signal[:len(impulse_train)])
    profiler.count("batch_reconstructions", len(amplitude_sets))
    return signals
