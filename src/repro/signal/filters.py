"""Simple smoothing filters applied to reference signals (paper §II-B)."""

from __future__ import annotations

import numpy as np


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge-aware normalization."""
    if window < 1:
        raise ValueError("window must be >= 1")
    signal = np.asarray(signal, dtype=float)
    kernel = np.ones(window)
    # repro: allow[P602] a genuine smoothing filter, not Eq. 6 synthesis
    smoothed = np.convolve(signal, kernel, mode="same")
    # repro: allow[P602] same smoothing filter, edge normalization arm
    norm = np.convolve(np.ones_like(signal), kernel, mode="same")
    return smoothed / norm


def gaussian_smooth(signal: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian smoothing with standard deviation ``sigma`` samples."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    signal = np.asarray(signal, dtype=float)
    radius = max(1, int(np.ceil(3 * sigma)))
    offsets = np.arange(-radius, radius + 1)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    # repro: allow[N202] the kernel contains exp(0) = 1 at offset 0, so
    # its sum is always >= 1; the normalization cannot divide by zero.
    kernel /= kernel.sum()
    padded = np.pad(signal, radius, mode="edge")
    # repro: allow[P602] a smoothing filter, not Eq. 6 synthesis
    return np.convolve(padded, kernel, mode="valid")
