"""Signal-processing substrate: kernels, reconstruction, capture, metrics."""

from .acquisition import Oscilloscope, ScopeConfig
from .filters import gaussian_smooth, moving_average
from .kernels import (DEFAULT_KERNEL, DampedSineKernel, ExpKernel, Kernel,
                      RectKernel, make_kernel)
from .metrics import (amplitude_correlation, cross_correlation,
                      match_report, normalize_energy, normalized_rmse,
                      per_cycle_correlations, per_cycle_similarities,
                      rms_error, simulation_accuracy)
from .modulo import fold_repetitions, modular_offsets, modulo_average
from .reconstruction import (batch_estimate_cycle_amplitudes,
                             batch_reconstruct, estimate_cycle_amplitudes,
                             peak_amplitudes, reconstruct, reconstruct_at)
from .spectrum import harmonic_energy, power_spectrum, spike_energy

__all__ = [
    "DEFAULT_KERNEL",
    "DampedSineKernel",
    "ExpKernel",
    "Kernel",
    "Oscilloscope",
    "RectKernel",
    "ScopeConfig",
    "amplitude_correlation",
    "batch_estimate_cycle_amplitudes",
    "batch_reconstruct",
    "cross_correlation",
    "estimate_cycle_amplitudes",
    "fold_repetitions",
    "gaussian_smooth",
    "harmonic_energy",
    "make_kernel",
    "match_report",
    "modular_offsets",
    "modulo_average",
    "moving_average",
    "normalize_energy",
    "normalized_rmse",
    "peak_amplitudes",
    "per_cycle_correlations",
    "per_cycle_similarities",
    "power_spectrum",
    "reconstruct",
    "reconstruct_at",
    "rms_error",
    "simulation_accuracy",
]
