"""Command-line interface for the EMSim reproduction.

Usage (also available as ``python -m repro``)::

    python -m repro train --out model.json [--board de0-cv]
    python -m repro simulate --model model.json program.s [--csv out.csv]
    python -m repro accuracy --model model.json [--groups 2]
    python -m repro savat --model model.json [--pairs LDM/NOP,ADD/NOP]

``train`` builds a model against the synthetic bench and saves it;
``simulate`` runs a RV32IM assembly file through EMSim and reports the
per-cycle amplitudes; ``accuracy`` scores the model on held-out coverage
groups; ``savat`` computes simulated SAVAT values for instruction pairs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import (EMSim, Trainer, coverage_groups, load_model,
                   save_model)
from .hardware import BOARDS, HardwareDevice
from .isa import assemble
from .leakage import savat_pair
from .robustness import FaultPlan, ReproError
from .signal import simulation_accuracy
from .uarch import DEFAULT_CONFIG


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EMSim (HPCA 2020) reproduction CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train a model on the bench")
    train.add_argument("--out", required=True, help="output model JSON")
    train.add_argument("--board", default="de0-cv", choices=sorted(BOARDS))
    train.add_argument("--probes", type=int, default=20,
                       help="activity probes per class")
    train.add_argument("--capture", default="ideal",
                       choices=("ideal", "reference"),
                       help="capture path: exact grid or the full "
                            "scope + modulo pipeline")
    train.add_argument("--repetitions", type=int, default=100,
                       help="scope repetitions per reference capture")
    train.add_argument("--fault-rate", type=float, default=0.0,
                       help="inject bench faults at this per-capture "
                            "rate (0 disables)")
    train.add_argument("--fault-seed", type=int, default=1234,
                       help="seed for the fault injector")
    train.add_argument("--strict", action="store_true",
                       help="fail instead of degrading to the ideal "
                            "grid when a probe cannot be captured")

    simulate = commands.add_parser(
        "simulate", help="simulate the EM signal of an assembly program")
    simulate.add_argument("--model", required=True)
    simulate.add_argument("program", help="RV32IM assembly source file")
    simulate.add_argument("--csv", help="write cycle,amplitude CSV here")
    simulate.add_argument("--max-cycles", type=int, default=None)

    accuracy = commands.add_parser(
        "accuracy", help="score the model on held-out coverage groups")
    accuracy.add_argument("--model", required=True)
    accuracy.add_argument("--groups", type=int, default=2)
    accuracy.add_argument("--board", default="de0-cv",
                          choices=sorted(BOARDS))

    savat = commands.add_parser(
        "savat", help="simulated SAVAT for instruction pairs")
    savat.add_argument("--model", required=True)
    savat.add_argument("--pairs", default="LDM/NOP,LDC/NOP,ADD/NOP,MUL/DIV")

    balance = commands.add_parser(
        "balance", help="apply the branch-timing-balancing pass to an "
                        "assembly file")
    balance.add_argument("program", help="RV32IM assembly source file")
    balance.add_argument("--out", required=True,
                         help="write balanced assembly here")
    return parser


def _cmd_train(args) -> int:
    fault_plan = None
    if args.fault_rate > 0:
        fault_plan = FaultPlan.preset(args.fault_rate,
                                      seed=args.fault_seed)
    device = HardwareDevice(board=BOARDS[args.board],
                            fault_plan=fault_plan)
    print(f"training on {device.name} ...")
    if fault_plan is not None:
        print(f"fault injection: {fault_plan.describe()}")
    trainer = Trainer(device=device,
                      activity_probes_per_class=args.probes,
                      capture_method=args.capture,
                      repetitions=args.repetitions,
                      strict=args.strict)
    model = trainer.train()
    save_model(model, args.out)
    print(model.summary())
    print(trainer.report.summary())
    print(f"model written to {args.out}")
    return 0


def _cmd_simulate(args) -> int:
    model = load_model(args.model)
    with open(args.program) as handle:
        program = assemble(handle.read(), name=args.program)
    simulator = EMSim(model, core_config=DEFAULT_CONFIG)
    result = simulator.simulate(program, max_cycles=args.max_cycles)
    print(f"{program.name}: {len(program)} instructions, "
          f"{result.num_cycles} cycles")
    labels = result.trace.instruction_labels("E")
    for cycle, amplitude in enumerate(result.amplitudes):
        bar = "#" * max(0, int(8 * amplitude))
        print(f"  {cycle:5d}  {labels[cycle]:<14s} {amplitude:7.3f} {bar}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write("cycle,execute_stage,amplitude\n")
            for cycle, amplitude in enumerate(result.amplitudes):
                handle.write(f"{cycle},{labels[cycle]},{amplitude}\n")
        print(f"amplitudes written to {args.csv}")
    return 0


def _cmd_accuracy(args) -> int:
    model = load_model(args.model)
    device = HardwareDevice(board=BOARDS[args.board])
    simulator = EMSim(model, core_config=device.core_config)
    total = 0.0
    groups = coverage_groups(group_size=256, seed=7,
                             limit_groups=args.groups)
    for group in groups:
        measured = device.capture_ideal(group)
        simulated = simulator.simulate(group)
        length = min(len(measured.signal), len(simulated.signal))
        score = simulation_accuracy(simulated.signal[:length],
                                    measured.signal[:length],
                                    device.samples_per_cycle)
        total += score
        print(f"  {group.name}: {score:6.1%}")
    print(f"mean accuracy: {total / len(groups):6.1%} "
          f"(paper: ~94.1%)")
    return 0


def _cmd_balance(args) -> int:
    from .leakage import balance_branch_timing
    with open(args.program) as handle:
        program = assemble(handle.read(), name=args.program)
    balanced, report = balance_branch_timing(program)
    with open(args.out, "w") as handle:
        handle.write(balanced.to_asm() + "\n")
    print(f"transformed {report.transformed} branch(es), added "
          f"{report.added_instructions} instructions")
    print(f"balanced assembly written to {args.out}")
    return 0


def _cmd_savat(args) -> int:
    model = load_model(args.model)
    simulator = EMSim(model, core_config=DEFAULT_CONFIG)
    spc = model.config.samples_per_cycle

    def source(program):
        result = simulator.simulate(program)
        return result.signal, result.num_cycles

    for pair in args.pairs.split(","):
        kind_a, _, kind_b = pair.strip().partition("/")
        measurement = savat_pair(source, kind_a.upper(), kind_b.upper(),
                                 spc)
        print(f"  SAVAT {kind_a.upper()}/{kind_b.upper()}: "
              f"{measurement.value:8.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    :class:`~repro.robustness.errors.ReproError` subclasses map to
    distinct nonzero exit codes (see ``repro/robustness/errors.py``) and
    a one-line message on stderr, so scripted pipelines can tell a
    corrupt model file from a failed acquisition without parsing
    tracebacks.
    """
    args = _build_parser().parse_args(argv)
    handlers = {"train": _cmd_train, "simulate": _cmd_simulate,
                "accuracy": _cmd_accuracy, "savat": _cmd_savat,
                "balance": _cmd_balance}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
