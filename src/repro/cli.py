"""Command-line interface for the EMSim reproduction.

Usage (also available as ``python -m repro``)::

    python -m repro train --out model.json [--board de0-cv] [--workers 8]
    python -m repro simulate --model model.json program.s [--csv out.csv]
    python -m repro accuracy --model model.json [--groups 2] [--workers 8]
    python -m repro savat --model model.json [--pairs LDM/NOP,ADD/NOP]
    python -m repro bench --programs 256 --workers 8 [--out BENCH_sim.json]

``train`` builds a model against the synthetic bench and saves it;
``simulate`` runs a RV32IM assembly file through EMSim and reports the
per-cycle amplitudes; ``accuracy`` scores the model on held-out coverage
groups; ``savat`` computes simulated SAVAT values for instruction pairs;
``bench`` times either a sequential vs batched/parallel measurement
campaign (``--mode sim``, writes ``BENCH_sim.json``), the scalar vs
fast model-building path (``--mode train``, writes ``BENCH_train.json``),
or the columnar activity-trace engine against the legacy recording path
and pickle (``--mode trace``, writes ``BENCH_trace.json``);
``report`` renders a run manifest (written under ``--trace-dir``) into a
Markdown run report.
Global flags: ``--profile`` prints a per-phase wall-time table (including
trace-cache hit/miss counters) after any command; ``--no-trace-cache``
and ``--trace-cache-dir`` control the content-addressed activity-trace
cache; ``--trace-dir`` records the run (span traces, metrics, a
``repro-manifest/1`` manifest + events JSONL) into a directory, and
``--no-manifest`` keeps the event stream but skips the final
``manifest.json``.  The full reference lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .core import (EMSim, Trainer, coverage_groups, load_model,
                   measurement_campaign, save_model)
from .hardware import BOARDS, HardwareDevice
from .isa import assemble
from .leakage import SimulatorSignalSource, savat_matrix
from .observability import (current_manifest_path, finish_run,
                            render_report, start_run, validate_manifest)
from .parallel import resolve_workers
from .profiling import enable_profiling, get_profiler, write_bench_json
from .robustness import ConfigurationError, FaultPlan, ReproError
from .signal import simulation_accuracy
from .uarch import DEFAULT_CONFIG

# ``--workers`` is deliberately left untyped at the argparse layer:
# validation happens inside the command handlers via
# ``resolve_workers`` so a bad value (``--workers=fast``) exits with
# the ConfigurationError code (16) and a precise message, instead of
# argparse's generic usage error (2).


def _checkpoint_path(directory: Optional[str],
                     name: str) -> Optional[str]:
    """Journal file for one campaign under ``--checkpoint-dir``."""
    if directory is None:
        return None
    return os.path.join(directory, f"{name}.jsonl")


def _add_supervision_flags(command: argparse.ArgumentParser) -> None:
    """The shared campaign-supervision flags (train/savat/bench)."""
    command.add_argument("--item-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-item wall-clock deadline; a worker "
                              "stuck past it is killed and the item "
                              "retried (default: no deadline)")
    command.add_argument("--max-item-retries", type=int, default=2,
                         help="failed attempts one item may accumulate "
                              "(crash, timeout, or error) before it is "
                              "quarantined")
    command.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="journal completed campaign items to "
                              "this directory so an interrupted run "
                              "can resume")
    command.add_argument("--resume", action="store_true",
                         help="resume from the journal in "
                              "--checkpoint-dir, skipping completed "
                              "items (bit-identical to an "
                              "uninterrupted run)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EMSim (HPCA 2020) reproduction CLI")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall-time profile after "
                             "the command finishes")
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="disable the content-addressed activity-"
                             "trace cache (every run re-executes the "
                             "pipeline)")
    parser.add_argument("--trace-cache-dir", default=None, metavar="DIR",
                        help="persist trace-cache entries to this "
                             "directory so repeated invocations reuse "
                             "them")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="record this run (span traces, metrics, "
                             "campaign events, and a manifest.json) "
                             "into DIR; render it later with "
                             "'repro report'")
    parser.add_argument("--no-manifest", action="store_true",
                        help="with --trace-dir, keep the events JSONL "
                             "but skip writing the final manifest.json")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train a model on the bench")
    train.add_argument("--out", required=True, help="output model JSON")
    train.add_argument("--board", default="de0-cv", choices=sorted(BOARDS))
    train.add_argument("--probes", type=int, default=20,
                       help="activity probes per class")
    train.add_argument("--capture", default="ideal",
                       choices=("ideal", "reference"),
                       help="capture path: exact grid or the full "
                            "scope + modulo pipeline")
    train.add_argument("--repetitions", type=int, default=100,
                       help="scope repetitions per reference capture")
    train.add_argument("--fault-rate", type=float, default=0.0,
                       help="inject bench faults at this per-capture "
                            "rate (0 disables)")
    train.add_argument("--fault-seed", type=int, default=1234,
                       help="seed for the fault injector")
    train.add_argument("--strict", action="store_true",
                       help="fail instead of degrading to the ideal "
                            "grid when a probe cannot be captured")
    train.add_argument("--workers", default="1",
                       help="worker processes for probe captures "
                            "(int or 'auto'; 1 = exact sequential path)")
    train.add_argument("--legacy-fit", action="store_true",
                       help="use the pre-optimization scalar model-"
                            "building path instead of the Gram/sweep "
                            "fast path (results are identical; this "
                            "exists for cross-checking)")
    _add_supervision_flags(train)

    simulate = commands.add_parser(
        "simulate", help="simulate the EM signal of an assembly program")
    simulate.add_argument("--model", required=True)
    simulate.add_argument("program", help="RV32IM assembly source file")
    simulate.add_argument("--csv", help="write cycle,amplitude CSV here")
    simulate.add_argument("--max-cycles", type=int, default=None)

    accuracy = commands.add_parser(
        "accuracy", help="score the model on held-out coverage groups")
    accuracy.add_argument("--model", required=True)
    accuracy.add_argument("--groups", type=int, default=2)
    accuracy.add_argument("--board", default="de0-cv",
                          choices=sorted(BOARDS))
    accuracy.add_argument("--workers", default="1",
                          help="worker processes for the re-simulation "
                               "fan-out (int or 'auto')")

    savat = commands.add_parser(
        "savat", help="simulated SAVAT for instruction pairs")
    savat.add_argument("--model", required=True)
    savat.add_argument("--pairs", default="LDM/NOP,LDC/NOP,ADD/NOP,MUL/DIV")
    savat.add_argument("--matrix", action="store_true",
                       help="compute the full Table-II matrix over all "
                            "six instruction kinds instead of --pairs")
    savat.add_argument("--workers", default="1",
                       help="worker processes for the pair sweep "
                            "(int or 'auto')")
    _add_supervision_flags(savat)

    balance = commands.add_parser(
        "balance", help="apply the branch-timing-balancing pass to an "
                        "assembly file")
    balance.add_argument("program", help="RV32IM assembly source file")
    balance.add_argument("--out", required=True,
                         help="write balanced assembly here")

    bench = commands.add_parser(
        "bench", help="time sequential vs batched measurement campaigns "
                      "(--mode sim), scalar vs fast model building "
                      "(--mode train), the columnar trace engine vs "
                      "the legacy recording path (--mode trace), or the "
                      "streaming signal-analytics engine vs its direct "
                      "oracles (--mode signal) and write a BENCH_*.json "
                      "report")
    bench.add_argument("--mode", default="sim",
                       choices=("sim", "train", "trace", "signal"),
                       help="sim: measurement-campaign fan-out bench; "
                            "train: Trainer.fit fast-path bench; "
                            "trace: columnar trace engine + codec bench; "
                            "signal: FFT synthesis, banded deconvolution "
                            "and streaming TVLA bench")
    bench.add_argument("--probes", type=int, default=6,
                       help="activity probes per class for --mode train")
    bench.add_argument("--kernel", default="crc32",
                       help="workload kernel for --mode trace")
    bench.add_argument("--reps", type=int, default=9,
                       help="best-of repetitions per timed section for "
                            "--mode trace and --mode signal")
    bench.add_argument("--cycles", type=int, default=4096,
                       help="synthesis trace length in cycles for "
                            "--mode signal")
    bench.add_argument("--tvla-traces", type=int, default=1024,
                       help="traces per TVLA group for --mode signal")
    bench.add_argument("--programs", type=int, default=256,
                       help="number of random campaign programs")
    bench.add_argument("--program-length", type=int, default=32,
                       help="instructions per campaign program")
    bench.add_argument("--repetitions", type=int, default=50,
                       help="scope repetitions per reference capture")
    bench.add_argument("--workers", default="8",
                       help="worker processes for the batched run "
                            "(int or 'auto'); the baseline always "
                            "runs with 1")
    bench.add_argument("--board", default="de0-cv", choices=sorted(BOARDS))
    bench.add_argument("--seed", type=int, default=0,
                       help="campaign seed (programs and captures)")
    bench.add_argument("--fault-rate", type=float, default=0.0,
                       help="inject bench faults at this per-capture "
                            "rate (0 disables)")
    bench.add_argument("--out", default=None,
                       help="write the machine-readable report here "
                            "(default: BENCH_sim.json, BENCH_train.json, "
                            "BENCH_trace.json or BENCH_signal.json, "
                            "by --mode)")
    _add_supervision_flags(bench)

    report = commands.add_parser(
        "report", help="render a run manifest written by --trace-dir "
                       "into a Markdown run report")
    report.add_argument("manifest",
                        help="path to a manifest.json produced by a "
                             "--trace-dir run")
    report.add_argument("--journal", default=None, metavar="FILE",
                        help="also summarize this checkpoint journal "
                             "in the report")
    report.add_argument("--out", default=None,
                        help="write the Markdown report here instead "
                             "of stdout")
    return parser


def _cmd_train(args) -> int:
    fault_plan = None
    if args.fault_rate > 0:
        fault_plan = FaultPlan.preset(args.fault_rate,
                                      seed=args.fault_seed)
    device = HardwareDevice(board=BOARDS[args.board],
                            fault_plan=fault_plan)
    print(f"training on {device.name} ...")
    if fault_plan is not None:
        print(f"fault injection: {fault_plan.describe()}")
    checkpoint = _checkpoint_path(args.checkpoint_dir,
                                  f"train_{args.board}")
    trainer = Trainer(device=device,
                      activity_probes_per_class=args.probes,
                      capture_method=args.capture,
                      repetitions=args.repetitions,
                      strict=args.strict,
                      workers=resolve_workers(args.workers),
                      fast=not args.legacy_fit,
                      item_timeout=args.item_timeout,
                      max_item_retries=args.max_item_retries,
                      checkpoint=checkpoint,
                      resume=args.resume)
    if checkpoint is not None:
        print(f"checkpoint journal: {checkpoint}"
              + (" (resuming)" if args.resume else ""))
    model = trainer.train()
    save_model(model, args.out)
    print(model.summary())
    print(trainer.report.summary())
    print(f"model written to {args.out}")
    return 0


def _cmd_simulate(args) -> int:
    model = load_model(args.model)
    with open(args.program) as handle:
        program = assemble(handle.read(), name=args.program)
    simulator = EMSim(model, core_config=DEFAULT_CONFIG)
    result = simulator.simulate(program, max_cycles=args.max_cycles)
    print(f"{program.name}: {len(program)} instructions, "
          f"{result.num_cycles} cycles")
    labels = result.trace.instruction_labels("E")
    for cycle, amplitude in enumerate(result.amplitudes):
        bar = "#" * max(0, int(8 * amplitude))
        print(f"  {cycle:5d}  {labels[cycle]:<14s} {amplitude:7.3f} {bar}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write("cycle,execute_stage,amplitude\n")
            for cycle, amplitude in enumerate(result.amplitudes):
                handle.write(f"{cycle},{labels[cycle]},{amplitude}\n")
        print(f"amplitudes written to {args.csv}")
    return 0


def _cmd_accuracy(args) -> int:
    if args.groups < 1:
        raise ConfigurationError("--groups must be >= 1")
    model = load_model(args.model)
    device = HardwareDevice(board=BOARDS[args.board])
    simulator = EMSim(model, core_config=device.core_config)
    total = 0.0
    groups = coverage_groups(group_size=256, seed=7,
                             limit_groups=args.groups)
    group_count = len(groups)
    simulations = simulator.simulate_many(
        groups, workers=resolve_workers(args.workers))
    for group, simulated in zip(groups, simulations):
        measured = device.capture_ideal(group)
        length = min(len(measured.signal), len(simulated.signal))
        score = simulation_accuracy(simulated.signal[:length],
                                    measured.signal[:length],
                                    device.samples_per_cycle)
        total += score
        print(f"  {group.name}: {score:6.1%}")
    print(f"mean accuracy: {total / group_count:6.1%} "
          f"(paper: ~94.1%)")
    return 0


def _cmd_balance(args) -> int:
    from .leakage import balance_branch_timing
    with open(args.program) as handle:
        program = assemble(handle.read(), name=args.program)
    balanced, report = balance_branch_timing(program)
    with open(args.out, "w") as handle:
        handle.write(balanced.to_asm() + "\n")
    print(f"transformed {report.transformed} branch(es), added "
          f"{report.added_instructions} instructions")
    print(f"balanced assembly written to {args.out}")
    return 0


def _cmd_savat(args) -> int:
    model = load_model(args.model)
    simulator = EMSim(model, core_config=DEFAULT_CONFIG)
    spc = model.config.samples_per_cycle
    source = SimulatorSignalSource(simulator)
    workers = resolve_workers(args.workers)
    supervision = dict(item_timeout=args.item_timeout,
                       max_item_retries=args.max_item_retries,
                       checkpoint=_checkpoint_path(args.checkpoint_dir,
                                                   "savat"),
                       resume=args.resume)

    if args.matrix:
        from .leakage import SAVAT_INSTRUCTIONS, format_matrix
        matrix = savat_matrix(source, spc, workers=workers,
                              **supervision)
        print(format_matrix(matrix, SAVAT_INSTRUCTIONS))
        return 0

    pairs = []
    for pair in args.pairs.split(","):
        kind_a, _, kind_b = pair.strip().partition("/")
        pairs.append((kind_a.upper(), kind_b.upper()))
    matrix = savat_matrix(source, spc, workers=workers, pairs=pairs,
                          **supervision)
    for kind_a, kind_b in pairs:
        print(f"  SAVAT {kind_a}/{kind_b}: "
              f"{matrix[(kind_a, kind_b)]:8.3f}")
    return 0


def _bench_train(args) -> int:
    """``bench --mode train``: scalar vs fast ``Trainer.fit`` timing.

    Runs the pre-optimization scalar reference (``fast=False``), a
    cold-cache fast fit, and a warm-cache fast fit, checks that all
    three produce the same model, and writes ``BENCH_train.json``.
    """
    from .core import configure_trace_cache, get_trace_cache
    from .core.persistence import model_to_dict

    out = args.out or "BENCH_train.json"
    device_kwargs = {"board": BOARDS[args.board]}
    if args.fault_rate > 0:
        device_kwargs["fault_plan"] = FaultPlan.preset(args.fault_rate,
                                                       seed=args.seed)
    print(f"bench: Trainer.fit at {args.probes} probes/class on "
          f"{BOARDS[args.board].name}")

    profiler = enable_profiling()

    def fit(fast: bool, clear_cache: bool):
        if clear_cache:
            configure_trace_cache(clear=True)
        device = HardwareDevice(**device_kwargs)
        trainer = Trainer(device=device,
                          activity_probes_per_class=args.probes,
                          seed=args.seed, fast=fast)
        start = time.perf_counter()
        model = trainer.train()
        return model_to_dict(model), time.perf_counter() - start

    legacy, legacy_seconds = fit(fast=False, clear_cache=True)
    print(f"  legacy scalar fit:   {legacy_seconds:7.2f} s")
    cold, cold_seconds = fit(fast=True, clear_cache=True)
    print(f"  fast fit (cold):     {cold_seconds:7.2f} s")
    warm, warm_seconds = fit(fast=True, clear_cache=False)
    print(f"  fast fit (warm):     {warm_seconds:7.2f} s")

    identical = legacy == cold == warm
    warm_speedup = legacy_seconds / warm_seconds \
        if warm_seconds > 0 else float("inf")
    cold_speedup = legacy_seconds / cold_seconds \
        if cold_seconds > 0 else float("inf")
    stats = get_trace_cache().stats
    print(f"  speedup: cold {cold_speedup:5.2f}x, warm "
          f"{warm_speedup:5.2f}x   models identical: {identical}")
    print(f"  trace cache: {stats.hits} hits / {stats.misses} misses")

    write_bench_json(out, metadata={
        "benchmark": "trainer_fit",
        "probes_per_class": args.probes,
        "board": args.board,
        "seed": args.seed,
        "fault_rate": args.fault_rate,
        "legacy_seconds": legacy_seconds,
        "fast_cold_seconds": cold_seconds,
        "fast_warm_seconds": warm_seconds,
        "speedup_cold": cold_speedup,
        "speedup_warm": warm_speedup,
        "models_identical": identical,
        "trace_cache_hits": stats.hits,
        "trace_cache_misses": stats.misses,
        "manifest": current_manifest_path(),
    }, profiler=profiler)
    print(f"report written to {out}")
    if not identical:
        print("error: fast-path model differs from the scalar "
              "reference", file=sys.stderr)
        return 1
    return 0


def _bench_trace(args) -> int:
    """``bench --mode trace``: columnar trace engine vs the legacy path.

    Times cold simulation (object-graph vs columnar recording on both
    cores), serialized trace size (legacy pickle vs the
    ``repro-trace/1`` codec), and cache-hit deserialization latency.
    Bit-identity between the two recording paths is asserted inside the
    measurement (see :mod:`repro.core.tracebench`); writes
    ``BENCH_trace.json``.
    """
    from .core.tracebench import run_trace_bench
    from .workloads import ALL_KERNELS

    out = args.out or "BENCH_trace.json"
    if args.kernel not in ALL_KERNELS:
        known = ", ".join(sorted(ALL_KERNELS))
        raise ConfigurationError(
            f"unknown --kernel {args.kernel!r} (known: {known})")
    print(f"bench: trace engine on {args.kernel!r}, best of "
          f"{args.reps} reps per section")

    profiler = enable_profiling()
    doc = run_trace_bench(kernel=args.kernel, reps=args.reps)

    print(f"  cold simulate (in-order): legacy "
          f"{doc['legacy_simulate_seconds'] * 1e3:7.1f} ms, columnar "
          f"{doc['columnar_simulate_seconds'] * 1e3:7.1f} ms "
          f"({doc['simulate_speedup']:.2f}x)")
    print(f"  cold simulate (OoO):      legacy "
          f"{doc['legacy_simulate_seconds_ooo'] * 1e3:7.1f} ms, columnar "
          f"{doc['columnar_simulate_seconds_ooo'] * 1e3:7.1f} ms "
          f"({doc['simulate_speedup_ooo']:.2f}x)")
    print(f"  serialized trace: pickle {doc['legacy_pickle_bytes']} B, "
          f"codec {doc['encoded_bytes']} B "
          f"({doc['size_ratio']:.1f}x smaller)")
    print(f"  cache-hit deserialize: unpickle "
          f"{doc['unpickle_seconds'] * 1e3:6.2f} ms, decode "
          f"{doc['decode_seconds'] * 1e3:6.2f} ms "
          f"({doc['decode_speedup']:.2f}x)")
    print(f"  derived views rebuild: {doc['derive_speedup']:.2f}x   "
          f"bit-identical: {doc['bit_identical']}")

    doc["manifest"] = current_manifest_path()
    write_bench_json(out, metadata=doc, profiler=profiler)
    print(f"report written to {out}")
    return 0


def _bench_signal(args) -> int:
    """``bench --mode signal``: the streaming signal-analytics engine.

    Times planned FFT/overlap-add synthesis against the direct
    ``np.convolve`` oracle, cold banded-Cholesky batch deconvolution
    against the legacy sparse-LU rebuild, and the peak memory of a
    streaming Welford TVLA against the batch materialize-then-test
    path.  Oracle agreement (<= 1e-9) is asserted inside the
    measurement (see :mod:`repro.core.signalbench`); writes
    ``BENCH_signal.json``.
    """
    from .core.signalbench import run_signal_bench

    out = args.out or "BENCH_signal.json"
    print(f"bench: signal engine at {args.cycles} synthesis cycles, "
          f"{args.tvla_traces} TVLA traces/group, best of {args.reps} "
          f"reps per section")

    profiler = enable_profiling()
    doc = run_signal_bench(cycles=args.cycles,
                           tvla_traces=args.tvla_traces, reps=args.reps)

    print(f"  synthesis ({doc['synthesis_cycles']} cycles): direct "
          f"{doc['direct_synth_seconds'] * 1e3:7.2f} ms, engine "
          f"{doc['engine_synth_seconds'] * 1e3:7.2f} ms "
          f"({doc['synthesis_speedup']:.2f}x)")
    print(f"  cold batch deconvolution ({doc['deconv_traces']} x "
          f"{doc['deconv_cycles']} cycles): LU "
          f"{doc['lu_deconv_seconds'] * 1e3:7.2f} ms, banded "
          f"{doc['banded_deconv_seconds'] * 1e3:7.2f} ms "
          f"({doc['batch_deconv_speedup']:.2f}x)")
    print(f"  TVLA peak memory ({doc['tvla_traces_per_group']} "
          f"traces/group): batch {doc['batch_tvla_peak_bytes']} B, "
          f"streaming {doc['streaming_tvla_peak_bytes']} B "
          f"({doc['tvla_rss_ratio']:.1f}x smaller)")
    print(f"  oracle agreement: synthesis "
          f"{doc['synthesis_max_error']:.2e}, deconvolution "
          f"{doc['deconv_max_error']:.2e}, t-values "
          f"{doc['tvla_max_error']:.2e}")

    doc["manifest"] = current_manifest_path()
    write_bench_json(out, metadata=doc, profiler=profiler)
    print(f"report written to {out}")
    return 0


def _cmd_bench(args) -> int:
    import numpy as np

    from .workloads.generators import RandomProgramBuilder

    if args.mode == "train":
        return _bench_train(args)
    if args.mode == "trace":
        return _bench_trace(args)
    if args.mode == "signal":
        return _bench_signal(args)
    workers = resolve_workers(args.workers)
    args.out = args.out or "BENCH_sim.json"
    fault_plan = None
    if args.fault_rate > 0:
        fault_plan = FaultPlan.preset(args.fault_rate, seed=args.seed)
    device = HardwareDevice(board=BOARDS[args.board],
                            fault_plan=fault_plan)
    builder = RandomProgramBuilder(seed=args.seed)
    programs = [builder.program(args.program_length, name=f"bench_{i:04d}")
                for i in range(args.programs)]
    print(f"bench: {len(programs)} programs x {args.program_length} "
          f"instructions x {args.repetitions} repetitions on {device.name}")

    profiler = enable_profiling()
    start = time.perf_counter()
    sequential = measurement_campaign(device, programs,
                                      repetitions=args.repetitions,
                                      workers=1, seed=args.seed)
    sequential_seconds = time.perf_counter() - start
    print(f"  sequential (--workers 1): {sequential_seconds:7.2f} s")

    start = time.perf_counter()
    batched = measurement_campaign(
        device, programs, repetitions=args.repetitions,
        workers=workers, seed=args.seed,
        item_timeout=args.item_timeout,
        max_item_retries=args.max_item_retries,
        checkpoint=_checkpoint_path(args.checkpoint_dir,
                                    f"bench_{args.board}"),
        resume=args.resume)
    batched_seconds = time.perf_counter() - start
    print(f"  batched  (--workers {workers}): "
          f"{batched_seconds:7.2f} s")

    max_diff = 0.0
    for left, right in zip(sequential, batched):
        max_diff = max(max_diff,
                       float(np.abs(left.signal - right.signal).max()),
                       float(np.abs(left.amplitudes
                                    - right.amplitudes).max()))
    speedup = sequential_seconds / batched_seconds \
        if batched_seconds > 0 else float("inf")
    print(f"  speedup: {speedup:5.2f}x   max abs diff: {max_diff:.3e}")

    write_bench_json(args.out, metadata={
        "benchmark": "measurement_campaign",
        "programs": len(programs),
        "program_length": args.program_length,
        "repetitions": args.repetitions,
        "board": args.board,
        "seed": args.seed,
        "fault_rate": args.fault_rate,
        "workers_sequential": 1,
        "workers_batched": workers,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "max_abs_diff": max_diff,
        "manifest": current_manifest_path(),
    }, profiler=profiler)
    print(f"report written to {args.out}")
    if max_diff > 1e-9:
        print(f"error: batched/sequential divergence {max_diff:.3e} "
              f"exceeds the 1e-9 contract", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    try:
        with open(args.manifest, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read run manifest {args.manifest!r} ({exc})")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{args.manifest}: run manifest is not valid JSON ({exc})")
    validate_manifest(document)
    journal = None
    if args.journal is not None:
        from .robustness import journal_summary
        journal = journal_summary(args.journal)
    text = render_report(document, journal=journal)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    :class:`~repro.robustness.errors.ReproError` subclasses map to
    distinct nonzero exit codes (see ``repro/robustness/errors.py``) and
    a one-line message on stderr, so scripted pipelines can tell a
    corrupt model file from a failed acquisition without parsing
    tracebacks.
    """
    args = _build_parser().parse_args(argv)
    handlers = {"train": _cmd_train, "simulate": _cmd_simulate,
                "accuracy": _cmd_accuracy, "savat": _cmd_savat,
                "balance": _cmd_balance, "bench": _cmd_bench,
                "report": _cmd_report}
    if args.profile:
        enable_profiling()
    if args.no_trace_cache or args.trace_cache_dir is not None:
        from .core import configure_trace_cache
        configure_trace_cache(enabled=not args.no_trace_cache,
                              directory=args.trace_cache_dir)
    recording = args.trace_dir is not None
    if recording:
        try:
            start_run(args.trace_dir, manifest=not args.no_manifest,
                      command=args.command)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exc.exit_code
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    finally:
        if args.profile:
            print(get_profiler().summary())
        if recording:
            manifest_path = finish_run()
            if manifest_path is not None:
                print(f"run manifest written to {manifest_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
