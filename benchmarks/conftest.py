"""Shared fixtures for the experiment benchmarks.

Each ``test_*`` file regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  A session-scoped trained bench is
shared; every experiment prints its paper-style rows and writes them to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite them.
"""

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import EMSim, train_emsim
from repro.hardware import HardwareDevice
from repro.signal import simulation_accuracy

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class Bench:
    """Trained measurement bench shared by the experiments."""

    device: HardwareDevice
    model: object
    simulator: EMSim

    @property
    def spc(self) -> int:
        return self.device.samples_per_cycle

    def accuracy(self, program, simulator=None, device=None,
                 max_cycles=None) -> float:
        """Paper metric for one program: simulated vs measured signal."""
        device = device or self.device
        simulator = simulator or self.simulator
        measured = device.capture_ideal(program, max_cycles=max_cycles)
        simulated = simulator.simulate(program, max_cycles=max_cycles)
        length = min(len(measured.signal), len(simulated.signal))
        return simulation_accuracy(simulated.signal[:length],
                                   measured.signal[:length], self.spc)


@pytest.fixture(scope="session")
def bench():
    device = HardwareDevice()
    model = train_emsim(device)
    return Bench(device=device, model=model,
                 simulator=EMSim(model, core_config=device.core_config))


@pytest.fixture()
def record(request):
    """Callable writing an experiment's report to results/ and stdout."""

    def _record(experiment: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        header = f"===== {experiment} ====="
        print(f"\n{header}\n{text.rstrip()}\n")

    return _record


def run_once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1,
                              warmup_rounds=0)


def bench_quick() -> bool:
    """Whether the shrunk ``make bench-quick`` workloads are selected."""
    return os.environ.get("REPRO_BENCH_QUICK") == "1"


def write_bench_report(name: str, metadata: dict, profiler=None) -> dict:
    """Write one ``BENCH_<name>.json`` report into ``results/``.

    The single place that knows the quick/full file-pair convention:
    under ``REPRO_BENCH_QUICK=1`` the report lands in
    ``BENCH_<name>.quick.json`` so the committed full-size artifact
    stays intact.  Every report also records the ``quick`` flag and the
    run-manifest path (``None`` unless the bench ran inside a
    ``--trace-dir``-style recording; see docs/observability.md), then
    delegates to :func:`repro.profiling.write_bench_json` for the
    ``repro-bench/1`` envelope.
    """
    from repro.observability import current_manifest_path
    from repro.profiling import write_bench_json

    suffix = ".quick.json" if bench_quick() else ".json"
    document = dict(metadata)
    document.setdefault("quick", bench_quick())
    document.setdefault("manifest", current_manifest_path())
    return write_bench_json(
        os.path.join(RESULTS_DIR, f"BENCH_{name}{suffix}"),
        metadata=document, profiler=profiler)
