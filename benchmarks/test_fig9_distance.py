"""Fig. 9 / §V-D — probe distance and the loss coefficient beta.

Moving the probe off the base position re-weights every source's coupling.
Keeping beta = 1 (the training-position assumption) mispredicts the new
signal; re-fitting the per-stage loss coefficients A -> A*beta via the
same linear regression restores the match.
"""

import numpy as np
from conftest import run_once

from repro.core import EMSim, coverage_groups, fit_beta, isolation_probe
from repro.signal import normalized_rmse
from repro.hardware import HardwareDevice, ProbePosition
from repro.workloads import checksum, dot_product

OFF_CENTER = ProbePosition(x=2.5, y=1.5, height=6.5)


def test_fig9_beta_refit(bench, record, benchmark):
    program = coverage_groups(group_size=160, seed=57, limit_groups=1)[0]
    fit_programs = [dot_product(8), checksum(16),
                    isolation_probe("mul", rs1_value=0xDEADBEEF,
                                    rs2_value=0x1234)]

    def experiment():
        moved = HardwareDevice(probe=OFF_CENTER)
        # beta = 1: training-position model applied verbatim
        naive = bench.accuracy(program, device=moved)

        # re-fit per-stage beta from a few measurements at the new spot
        beta = fit_beta(bench.model, moved, fit_programs)
        import copy
        adjusted_model = copy.copy(bench.model)
        adjusted_model.beta = beta
        adjusted_sim = EMSim(adjusted_model,
                             core_config=moved.core_config)
        adjusted = bench.accuracy(program, device=moved,
                                  simulator=adjusted_sim)
        base = bench.accuracy(program)
        # scale-sensitive check (the paper reports correlation AND RMSE):
        measured = moved.capture_ideal(program)
        naive_signal = bench.simulator.simulate(program).signal
        adjusted_signal = adjusted_sim.simulate(program).signal
        length = min(len(measured.signal), len(naive_signal))
        rmse_naive = normalized_rmse(naive_signal[:length],
                                     measured.signal[:length])
        rmse_adjusted = normalized_rmse(adjusted_signal[:length],
                                        measured.signal[:length])
        return dict(base=base, naive=naive, adjusted=adjusted, beta=beta,
                    rmse_naive=rmse_naive, rmse_adjusted=rmse_adjusted)

    results = run_once(benchmark, experiment)
    beta_text = ", ".join(f"{stage}={value:.2f}"
                          for stage, value in
                          sorted(results["beta"].items()))
    lines = [
        f"probe moved from die center to ({OFF_CENTER.x}, {OFF_CENTER.y},"
        f" {OFF_CENTER.height}) cm:",
        f"  at the base position:          {results['base']:6.1%}",
        f"  beta = 1 at the new position:  {results['naive']:6.1%} "
        f"(Fig. 9 bottom)",
        f"  fitted beta at the new spot:   {results['adjusted']:6.1%} "
        f"(Fig. 9 top)",
        f"  fitted per-stage beta: {beta_text}",
        f"  normalized RMSE: beta=1 {results['rmse_naive']:.2f}  ->  "
        f"fitted beta {results['rmse_adjusted']:.2f}",
        "",
        "paper shape: adjusting beta is crucial to explain the antenna",
        "location -> " +
        ("reproduced" if results["adjusted"] > results["naive"]
         else "NOT reproduced"),
    ]
    record("fig9_distance", "\n".join(lines))
    assert results["adjusted"] >= results["naive"]
    assert results["rmse_adjusted"] < results["rmse_naive"] - 0.1
    # the fitted betas really differ across stages (unequal re-weighting)
    values = np.array(list(results["beta"].values()))
    assert values.max() - values.min() > 0.02
