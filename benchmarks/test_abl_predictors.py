"""§IV ablation — branch predictor choice barely affects the signal.

The paper "studied the impact of using different branch-predictors on the
side-channel signals (e.g., always not-taken, 2-level, g-share, etc.) and
did not observe any statistically significant difference" — the predictors
have small switching activity; what shows up is only the (timing) effect
of mispredictions themselves, which EMSim models anyway.
"""

from dataclasses import replace

import numpy as np
from conftest import run_once

from repro.core import EMSim
from repro.hardware import HardwareDevice
from repro.workloads import RandomProgramBuilder


def test_abl_predictor_choice(bench, record, benchmark):
    program = RandomProgramBuilder(seed=77).program(160)

    def experiment():
        results = {}
        for predictor in ("not-taken", "two-level", "gshare"):
            config = replace(bench.device.core_config,
                             predictor=predictor)
            device = HardwareDevice(core_config=config)
            simulator = EMSim(bench.model, core_config=config)
            trace = simulator.run_trace(program)
            results[predictor] = dict(
                accuracy=bench.accuracy(program, device=device,
                                        simulator=simulator),
                cycles=trace.num_cycles,
                mispredicts=trace.mispredictions)
        return results

    results = run_once(benchmark, experiment)
    lines = ["same model (trained with the 2-level predictor core),",
             "simulated on cores with different predictors:"]
    for predictor, info in results.items():
        lines.append(f"  {predictor:<10s} accuracy "
                     f"{info['accuracy']:6.1%}  "
                     f"({info['cycles']} cycles, "
                     f"{info['mispredicts']} mispredicts)")
    accuracies = [info["accuracy"] for info in results.values()]
    spread = max(accuracies) - min(accuracies)
    lines.append("")
    lines.append(f"accuracy spread across predictors: {spread:.2%}")
    lines.append("paper shape: no statistically significant difference "
                 "between predictors -> " +
                 ("reproduced" if spread < 0.02 else "NOT reproduced"))
    record("abl_predictors", "\n".join(lines))

    assert spread < 0.02
    assert min(accuracies) > 0.9
    # the predictors do differ in timing...
    cycle_counts = {info["cycles"] for info in results.values()}
    assert len(cycle_counts) > 1
