"""§V-A ablation — reduced sampling rates keep the accuracy.

The paper: "similar accuracy can be achieved with much lower
sampling-rate (about 200 MSa/s in our measurements)" — i.e. 4 samples per
50 MHz clock cycle instead of the scope's 200.  The experiment sweeps the
acquisition rate of the reference-capture chain and measures the match to
the full-rate reference.
"""

import numpy as np
from conftest import run_once

from repro.core import isolation_probe
from repro.hardware import HardwareDevice
from repro.signal import ScopeConfig, simulation_accuracy

RATES = (40.0, 12.0, 6.0, 4.0, 2.0)   # scope samples per clock cycle


def test_abl_sampling_rate(bench, record, benchmark):
    probe = isolation_probe("mul", rs1_value=0xDEADBEEF,
                            rs2_value=0x12345678)

    def experiment():
        ideal = bench.device.capture_ideal(probe)
        scores = {}
        for rate in RATES:
            device = HardwareDevice(
                scope_config=ScopeConfig(samples_per_cycle=rate,
                                         noise_rms=0.05),
                seed=int(1000 * rate))
            reference = device.capture_reference(probe, repetitions=250)
            scores[rate] = simulation_accuracy(ideal.signal,
                                               reference.signal,
                                               bench.spc)
        return scores

    scores = run_once(benchmark, experiment)
    lines = ["reference quality vs scope sampling rate (modulo-folded,",
             "250 repetitions; rates in samples per clock cycle):"]
    for rate, score in scores.items():
        mss = rate * 50  # at the paper's 50 MHz clock
        lines.append(f"  {rate:5.1f} S/cycle (~{mss:5.0f} MSa/s): "
                     f"{score:6.1%}")
    lines.append("")
    lines.append("paper shape: ~4 S/cycle (200 MSa/s) is as good as the "
                 "scope's full rate -> " +
                 ("reproduced"
                  if scores[4.0] > scores[max(RATES)] - 0.03
                  else "NOT reproduced"))
    record("abl_sampling_rate", "\n".join(lines))

    assert scores[4.0] > scores[max(RATES)] - 0.03
    assert scores[4.0] > 0.9


def test_abl_repetitions_tradeoff(bench, record, benchmark):
    """More repetitions substitute for sampling rate (modulo averaging
    interleaves the asynchronous grids)."""
    probe = isolation_probe("add", rs1_value=0x0F0F0F0F)

    def experiment():
        ideal = bench.device.capture_ideal(probe)
        scores = {}
        for repetitions in (20, 80, 320):
            device = HardwareDevice(
                scope_config=ScopeConfig(samples_per_cycle=5.0,
                                         noise_rms=0.1),
                seed=repetitions)
            reference = device.capture_reference(probe,
                                                 repetitions=repetitions)
            scores[repetitions] = simulation_accuracy(
                ideal.signal, reference.signal, bench.spc)
        return scores

    scores = run_once(benchmark, experiment)
    lines = ["reference quality vs repetition count (5 S/cycle scope):"]
    for repetitions, score in scores.items():
        lines.append(f"  {repetitions:4d} repetitions: {score:6.1%}")
    record("abl_repetitions", "\n".join(lines))
    assert scores[320] >= scores[20]
    assert scores[320] > 0.9
