"""Perf: the model-building fast path vs the pre-optimization scalar path.

The acceptance claim for the fast path (docs/architecture.md): an
end-to-end ``Trainer.fit`` on a Table-I-scale workload runs at least 5x
faster with ``fast=True`` on a warm trace cache than the ``fast=False``
scalar reference, while producing a **bit-identical** model — the same
step-wise feature sets, the same instruction-cluster assignments, and
the same coefficients (the serialized model dicts compare equal, which
is stronger than the 1e-9 contract).

Emits the machine-readable ``benchmarks/results/BENCH_train.json``
report (schema ``repro-bench/1``).  ``REPRO_BENCH_QUICK=1`` shrinks the
workload so the whole bench fits inside the tier-1 time budget
(``make bench-quick``) and writes ``BENCH_train.quick.json`` instead,
keeping the committed full-size artifact intact.
"""

import time

import pytest

from conftest import bench_quick, run_once, write_bench_report
from repro.core import (Trainer, configure_trace_cache, get_trace_cache,
                        model_to_dict)
from repro.hardware import HardwareDevice
from repro.profiling import disable_profiling, enable_profiling

QUICK = bench_quick()
PROBES = 2 if QUICK else 8
SPEEDUP_FLOOR = 2.0 if QUICK else 5.0
# The warm fit only takes ~0.2 s, so a single GC pause or scheduler
# hiccup can double it and sink the ratio; take the best of a few
# repetitions (the fits are deterministic, so the models stay equal).
WARM_REPS = 3


def _fit(fast, clear_cache):
    if clear_cache:
        configure_trace_cache(clear=True)
    device = HardwareDevice()
    trainer = Trainer(device=device, activity_probes_per_class=PROBES,
                      seed=0, fast=fast)
    start = time.perf_counter()
    model = trainer.train()
    return model_to_dict(model), time.perf_counter() - start


@pytest.mark.benchmark(group="perf")
def test_training_fast_path_speedup(benchmark, record):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            legacy, legacy_seconds = _fit(fast=False, clear_cache=True)
            cold, cold_seconds = _fit(fast=True, clear_cache=True)
            warm, warm_seconds = _fit(fast=True, clear_cache=False)
            for _ in range(WARM_REPS - 1):
                _, seconds = _fit(fast=True, clear_cache=False)
                warm_seconds = min(warm_seconds, seconds)
        finally:
            disable_profiling()
        stats = get_trace_cache().stats
        document = write_bench_report(
            "train",
            metadata={
                "benchmark": "trainer_fit",
                "probes_per_class": PROBES,
                "legacy_seconds": legacy_seconds,
                "fast_cold_seconds": cold_seconds,
                "fast_warm_seconds": warm_seconds,
                "speedup_cold": legacy_seconds / cold_seconds,
                "speedup_warm": legacy_seconds / warm_seconds,
                "models_identical": legacy == cold == warm,
                "trace_cache_hits": stats.hits,
                "trace_cache_misses": stats.misses,
            }, profiler=profiler)
        return document

    document = run_once(benchmark, experiment)
    lines = [f"Trainer.fit at {PROBES} probes/class"
             + (" (quick mode)" if QUICK else ""),
             f"legacy scalar fit:    {document['legacy_seconds']:7.2f} s",
             f"fast fit (cold cache): {document['fast_cold_seconds']:6.2f} s",
             f"fast fit (warm cache): {document['fast_warm_seconds']:6.2f} s",
             f"speedup: cold {document['speedup_cold']:5.2f}x, warm "
             f"{document['speedup_warm']:5.2f}x  "
             f"(floor {SPEEDUP_FLOOR:.1f}x warm)",
             f"models identical: {document['models_identical']}",
             f"trace cache: {document['trace_cache_hits']} hits / "
             f"{document['trace_cache_misses']} misses"]
    record("perf_training", "\n".join(lines))
    assert document["models_identical"]
    assert document["trace_cache_hits"] > 0
    assert document["speedup_warm"] >= SPEEDUP_FLOOR
