"""§V-B — manufacturing variability across physical board instances.

The paper measures three physical instances of the DE0-CV: signals are
slightly shifted (crystal tolerance shifts the actual clock), but a model
trained on instance #1 stays accurate on the others — no per-unit
retraining needed.
"""

import numpy as np
from conftest import run_once

from repro.core import coverage_groups
from repro.hardware import DE0_CV, DeviceInstance, HardwareDevice


def test_sec5b_instance_robustness(bench, record, benchmark):
    program = coverage_groups(group_size=192, seed=55, limit_groups=1)[0]

    def experiment():
        results = {}
        for instance_id in (0, 1, 2):
            device = HardwareDevice(
                instance=DeviceInstance(board=DE0_CV,
                                        instance_id=instance_id))
            results[instance_id] = dict(
                accuracy=bench.accuracy(program, device=device),
                clock_ppm=device.instance.clock_ppm,
                gain=device.instance.gain_jitter)
        return results

    results = run_once(benchmark, experiment)
    lines = ["model trained on board #0, evaluated on three instances:"]
    for instance_id, info in results.items():
        lines.append(f"  board #{instance_id}: accuracy "
                     f"{info['accuracy']:6.1%}  "
                     f"(clock {info['clock_ppm']:+6.1f} ppm, "
                     f"gain x{info['gain']:.3f})")
    base = results[0]["accuracy"]
    worst_drop = base - min(info["accuracy"]
                            for info in results.values())
    lines.append("")
    lines.append(f"worst accuracy drop vs training instance: "
                 f"{worst_drop:.2%}")
    lines.append("paper shape: the clock shift has no statistically "
                 "significant impact -> " +
                 ("reproduced" if worst_drop < 0.02 else
                  "NOT reproduced"))
    record("sec5b_manufacturing", "\n".join(lines))
    assert worst_drop < 0.02


def test_sec5b_reference_capture_shift(bench, record, benchmark):
    """Through the real acquisition chain, instance clock offsets appear
    as a slight per-cycle stretch — visible but harmless."""
    from repro.core import isolation_probe
    from repro.signal import simulation_accuracy

    probe = isolation_probe("add", rs1_value=0x0F0F0F0F)

    def experiment():
        base = HardwareDevice(instance=DeviceInstance(DE0_CV, 0))
        other = HardwareDevice(instance=DeviceInstance(DE0_CV, 2))
        reference_base = base.capture_reference(probe, repetitions=120)
        reference_other = other.capture_reference(probe, repetitions=120)
        return simulation_accuracy(reference_base.signal,
                                   reference_other.signal, bench.spc)

    similarity = run_once(benchmark, experiment)
    record("sec5b_reference_shift",
           f"modulo-averaged references of instance #0 vs #2: "
           f"{similarity:.1%} per-cycle similarity\n"
           "(the residual difference is the paper's 'slightly shifted' "
           "clock)")
    assert similarity > 0.9
