"""Extensions — SPA key recovery, leakage capacity, and profiling.

Design-stage security analyses built on EMSim's simulated signals, per the
paper's introduction (software leak detection, compiler guidance) and
related work (capacity metrics [40]/[60], Spectral Profiling / EMPROF):

* SPA against square-and-multiply modexp: the simulated signal recovers
  the key; the constant-time rewrite closes the channel;
* mutual-information capacity of a single key bit, localized in time;
* template-based instruction recognition on both real and simulated
  signals.
"""

import numpy as np
from conftest import run_once

from repro.core import isolation_probe, probe_instruction_seq
from repro.leakage import (InstructionProfiler, capacity_per_cycle,
                           duration_separation, recover_exponent)
from repro.workloads import modexp_program

SECRET = 0xACE5
MODULUS = 40961


def test_ext_spa_key_recovery(bench, record, benchmark):
    def experiment():
        results = {}
        for constant_time in (False, True):
            program = modexp_program(7, SECRET, MODULUS,
                                     constant_time=constant_time)
            simulated = bench.simulator.simulate(program)
            spa = recover_exponent(simulated.trace, program)
            results[constant_time] = dict(
                recovered=spa.exponent(),
                separation=duration_separation(spa.durations),
                cycles=simulated.num_cycles)
        return results

    results = run_once(benchmark, experiment)
    leaky = results[False]
    hardened = results[True]
    lines = [
        f"SPA on EMSim-simulated modexp signals (secret {SECRET:#06x}):",
        f"  naive:         recovered {leaky['recovered']:#06x} "
        f"({'KEY RECOVERED' if leaky['recovered'] == SECRET else 'failed'}"
        f", cluster separation {leaky['separation']:.0f} cycles)",
        f"  constant-time: recovered {hardened['recovered']:#06x} "
        f"({'KEY RECOVERED' if hardened['recovered'] == SECRET else 'attack defeated'}"
        f", separation {hardened['separation']:.0f} cycles)",
    ]
    record("ext_spa", "\n".join(lines))
    assert leaky["recovered"] == SECRET
    assert hardened["recovered"] != SECRET
    assert leaky["separation"] > hardened["separation"] + 3


def test_ext_leakage_capacity(bench, record, benchmark):
    def experiment():
        from repro.leakage import iteration_starts
        rng = np.random.default_rng(3)
        noise = np.random.default_rng(17)
        capacities = {}
        for constant_time in (False, True):
            secrets, traces = [], []
            loop_start = None
            for _ in range(50):
                bit = int(rng.integers(0, 2))
                exponent = (0x2A << 2) | (bit << 1) | 1
                program = modexp_program(7, exponent, MODULUS, bits=8,
                                         constant_time=constant_time)
                simulated = bench.simulator.simulate(program)
                if loop_start is None:
                    loop_start = iteration_starts(simulated.trace,
                                                  program)[0]
                # attacker-realistic single-shot traces: add noise and
                # analyze from the loop onward (the prologue trivially
                # encodes the key operand in both variants)
                signal = simulated.signal[loop_start * bench.spc:]
                traces.append(signal + noise.normal(0.0, 0.3,
                                                    size=signal.shape))
                secrets.append(bit)
            length = min(len(trace) for trace in traces)
            traces = [trace[:length] for trace in traces]
            capacities[constant_time] = capacity_per_cycle(
                secrets, traces, bench.spc)
        return capacities

    capacities = run_once(benchmark, experiment)
    leaky = capacities[False]
    hardened = capacities[True]
    leaky_cycles = int((leaky > 0.3).sum())
    hardened_cycles = int((hardened > 0.3).sum())
    lines = [
        "mutual information between one key bit and per-cycle energy",
        "(50 noisy simulated traces each, loop window):",
        f"  naive modexp:         max {float(leaky.max()):.2f} "
        f"bits/trace, {leaky_cycles} leaking cycles "
        "(timing shift exposes the whole tail)",
        f"  constant-time modexp: max {float(hardened.max()):.2f} "
        f"bits/trace, {hardened_cycles} leaking cycles "
        "(localized amplitude leak in the mask datapath)",
        "",
        "the capacity map shows the constant-time rewrite kills the",
        "timing channel but a DPA-style amplitude residue remains at",
        "the bit-handling cycles - masking would be the next fix. all",
        "derived from simulation, before any hardware exists.",
    ]
    record("ext_capacity", "\n".join(lines))
    assert float(leaky.max()) > 0.8
    # the timing channel smears the naive leak over far more cycles
    assert leaky_cycles > 3 * max(1, hardened_cycles)


def test_ext_automated_mitigation(bench, record, benchmark):
    """EMSim-verified compiler pass: balance secret-dependent branches."""
    from repro.leakage import balance_branch_timing
    from repro.workloads import modexp_reference
    from repro.uarch import GoldenSimulator

    def experiment():
        program = modexp_program(7, SECRET, MODULUS)
        balanced, report = balance_branch_timing(program)
        golden = GoldenSimulator(balanced)
        golden.run(max_steps=300_000)
        assert golden.registers[13] == modexp_reference(7, SECRET,
                                                        MODULUS)
        results = {}
        for label, target in (("naive", program),
                              ("balanced", balanced)):
            simulated = bench.simulator.simulate(target)
            spa = recover_exponent(simulated.trace, target)
            results[label] = dict(recovered=spa.exponent(),
                                  separation=duration_separation(
                                      spa.durations),
                                  cycles=simulated.num_cycles)
        results["report"] = report
        return results

    results = run_once(benchmark, experiment)
    naive = results["naive"]
    balanced = results["balanced"]
    lines = [
        "automated branch-timing balancing, verified through EMSim:",
        f"  pass transformed {results['report'].transformed} branch, "
        f"added {results['report'].added_instructions} instructions",
        f"  naive:    SPA recovers {naive['recovered']:#06x} "
        f"({'KEY RECOVERED' if naive['recovered'] == SECRET else 'failed'}"
        f", separation {naive['separation']:.0f} cycles, "
        f"{naive['cycles']} cycles total)",
        f"  balanced: SPA recovers {balanced['recovered']:#06x} "
        f"({'KEY RECOVERED' if balanced['recovered'] == SECRET else 'attack defeated'}"
        f", separation {balanced['separation']:.0f} cycles, "
        f"{balanced['cycles']} cycles total)",
        "",
        "the compiler use case of the paper's introduction: optimize for",
        "reduced leakage against the simulated signal, no hardware loop.",
    ]
    record("ext_mitigation", "\n".join(lines))
    assert naive["recovered"] == SECRET
    assert balanced["recovered"] != SECRET
    assert balanced["separation"] < naive["separation"] - 3


def test_ext_instruction_profiling(bench, record, benchmark):
    classes = ("mul", "lw", "sw", "add")
    train_values = [(3, 5), (17, 9), (250, 97), (4444, 321)]
    test_values = [(7, 2), (1000, 13)]

    def experiment():
        def examples(name, values, source):
            cases = []
            for rs1, rs2 in values:
                probe = isolation_probe(name, rs1_value=rs1,
                                        rs2_value=rs2)
                if source == "real":
                    measurement = bench.device.capture_ideal(probe)
                    signal, trace = measurement.signal, measurement.trace
                else:
                    simulated = bench.simulator.simulate(probe)
                    signal, trace = simulated.signal, simulated.trace
                seq = probe_instruction_seq(probe)
                start = min(trace.cycles_of(seq, "F"))
                cases.append((signal, start))
            return cases

        profiler = InstructionProfiler(samples_per_cycle=bench.spc).fit(
            {name: examples(name, train_values, "real")
             for name in classes})
        real_accuracy = profiler.accuracy(
            {name: examples(name, test_values, "real")
             for name in classes})
        # cross-domain: templates trained on the bench recognize EMSim's
        # simulated signals (the signals carry the same features)
        sim_accuracy = profiler.accuracy(
            {name: examples(name, test_values, "sim")
             for name in classes})
        return real_accuracy, sim_accuracy

    real_accuracy, sim_accuracy = run_once(benchmark, experiment)
    chance = 1.0 / len(classes)
    lines = [
        f"template recognition over {classes} "
        f"(chance = {chance:.0%}):",
        f"  real -> real:      {real_accuracy:6.1%}",
        f"  real -> simulated: {sim_accuracy:6.1%}  (cross-domain)",
        "",
        "EMSim's signals carry the same program-tracking features the",
        "EM-profiling literature exploits (Spectral Profiling, EMPROF).",
    ]
    record("ext_profiling", "\n".join(lines))
    assert real_accuracy >= 0.7
    assert sim_accuracy >= 0.5
