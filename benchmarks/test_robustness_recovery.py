"""Robustness recovery: held-out accuracy vs injected capture-fault rate.

The acceptance claim for the resilience layer (docs/robustness.md): with
the canonical mixed fault plan hitting 20 % of captures, training through
the full scope + modulo pipeline still completes, and the retry /
escalation / degradation ladder plus Huber-robust fitting keep held-out
accuracy within 10 % of the fault-free fit.  Reports the accuracy and the
acquisition accounting at 0 % / 5 % / 20 %.
"""

import pytest

from conftest import run_once
from repro.core import EMSim, Trainer, coverage_groups
from repro.hardware import HardwareDevice
from repro.robustness import FaultPlan
from repro.signal import simulation_accuracy

FAULT_RATES = (0.0, 0.05, 0.20)
TOLERANCE = 0.10                     # max accuracy drop vs fault-free


def _train_at(rate):
    plan = FaultPlan.preset(rate, seed=101) if rate > 0 else None
    device = HardwareDevice(seed=7, fault_plan=plan)
    trainer = Trainer(device=device, capture_method="reference",
                      repetitions=16, activity_probes_per_class=4,
                      miso_groups=1, miso_group_size=64, seed=11)
    model = trainer.train()
    return device, model, trainer.report


def _held_out_accuracy(device, model):
    """Score on held-out coverage groups against the clean bench.

    The reference is the ideal capture — the ground truth the noisy
    pipeline is estimating — so the score isolates what the faults did
    to the *model*, not to the evaluation signal.
    """
    simulator = EMSim(model, core_config=device.core_config)
    groups = coverage_groups(group_size=96, seed=400, limit_groups=3)
    total = 0.0
    for group in groups:
        measured = device.capture_ideal(group)
        simulated = simulator.simulate(group)
        length = min(len(measured.signal), len(simulated.signal))
        total += simulation_accuracy(simulated.signal[:length],
                                     measured.signal[:length],
                                     device.samples_per_cycle)
    return total / len(groups)


@pytest.mark.benchmark(group="robustness")
def test_recovery_vs_fault_rate(benchmark, record):
    def experiment():
        rows = []
        for rate in FAULT_RATES:
            device, model, report = _train_at(rate)
            accuracy = _held_out_accuracy(device, model)
            rows.append((rate, accuracy, report))
        return rows

    rows = run_once(benchmark, experiment)

    lines = ["held-out accuracy vs injected capture-fault rate",
             "(reference capture, 16 reps, retry+escalate+degrade, "
             "Huber fitting)", ""]
    baseline = rows[0][1]
    for rate, accuracy, report in rows:
        stats = report.acquisition
        lines.append(f"fault rate {rate:4.0%}: accuracy {accuracy:6.1%} "
                     f"(drop {baseline - accuracy:+6.1%})")
        lines.append(f"    {stats.summary()}")
    record("robustness_recovery", "\n".join(lines))

    # fault-free training through the noisy pipeline must stay close to
    # the paper's headline accuracy at these small training settings
    assert baseline > 0.80
    for rate, accuracy, report in rows[1:]:
        assert accuracy >= baseline - TOLERANCE, \
            f"rate {rate:.0%}: {accuracy:.1%} vs baseline {baseline:.1%}"
    # the 20% run must actually have exercised the ladder
    stressed = rows[-1][2].acquisition
    assert stressed.probes_retried > 0
    assert stressed.quality_rejects > 0
