"""Fig. 2 — per-stage sources vs a single averaged source.

An instruction progresses through the pipeline (NOP -> inst -> NOP);
modeling each pipeline stage as its own EM source tracks the signal,
while using one "average" amplitude for all stages misses the per-stage
structure.  Following the paper's figure, the comparison is over the
cycles in which the instruction is in flight.
"""

import numpy as np
from conftest import run_once

from repro.core import isolation_probe, make_simulator, \
    probe_instruction_seq
from repro.signal import simulation_accuracy

PROBES = {
    "add": dict(rs1_value=0x0F0F0F0F, rs2_value=0x12345678),
    "mul": dict(rs1_value=0xDEADBEEF, rs2_value=0x13579BDF),
    "lw": dict(mem_offset=128),
    "sw": dict(rs2_value=0xA5A5A5A5, mem_offset=64),
}


def _transit_window(program, trace):
    """Cycle span while the probed instruction occupies any stage."""
    seq = probe_instruction_seq(program)
    cycles = [cycle for stage in ("F", "D", "E", "M", "W")
              for cycle in trace.cycles_of(seq, stage)]
    return min(cycles), max(cycles) + 1


def test_fig2_per_stage_vs_single_source(bench, record, benchmark):
    def experiment():
        single_simulator = make_simulator(
            bench.model, "single-source",
            core_config=bench.device.core_config)
        spc = bench.spc
        rows = {}
        for name, operands in PROBES.items():
            probe = isolation_probe(name, **operands)
            measured = bench.device.capture_ideal(probe)
            start, stop = _transit_window(probe, measured.trace)
            window = slice(start * spc, stop * spc)
            scores = {}
            for label, simulator in (("per-stage", bench.simulator),
                                     ("single", single_simulator)):
                simulated = simulator.simulate(probe)
                scores[label] = simulation_accuracy(
                    simulated.signal[window], measured.signal[window],
                    spc)
            rows[name] = scores
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["NOP -> inst -> NOP probes, accuracy over the instruction's",
             "pipeline transit (paper Fig. 2):",
             f"  {'inst':<6s} {'per-stage':>10s} {'single-source':>14s}"]
    for name, scores in rows.items():
        lines.append(f"  {name:<6s} {scores['per-stage']:>10.1%} "
                     f"{scores['single']:>14.1%}")
    mean_per_stage = float(np.mean([s["per-stage"]
                                    for s in rows.values()]))
    mean_single = float(np.mean([s["single"] for s in rows.values()]))
    lines.append("")
    lines.append(f"  mean:  per-stage {mean_per_stage:.1%} vs "
                 f"single-source {mean_single:.1%}")
    lines.append("paper shape: single-source causes significant "
                 "inaccuracies -> " +
                 ("reproduced" if mean_single < mean_per_stage
                  else "NOT reproduced"))
    record("fig2_per_stage", "\n".join(lines))
    assert mean_per_stage > mean_single
    # the memory instructions expose the biggest single-source error
    assert rows["lw"]["single"] < rows["lw"]["per-stage"]
