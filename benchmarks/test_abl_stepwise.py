"""§III-B ablation — step-wise regression prunes most transition bits.

"Using this method we managed to reduce the size of T by more than 65%":
the F-test entry criterion keeps only the transition features with a
statistically significant amplitude contribution, with (almost) no
accuracy cost versus using every bit.
"""

import numpy as np
from conftest import run_once

from repro.core import Trainer, coverage_groups, EMSim
from repro.hardware import HardwareDevice
from repro.uarch import STAGES, STAGE_REGISTERS, stage_bit_count


def test_abl_stepwise_pruning(bench, record, benchmark):
    program = coverage_groups(group_size=160, seed=58, limit_groups=1)[0]

    def experiment():
        total = sum(stage_bit_count(stage) + len(STAGE_REGISTERS[stage])
                    for stage in STAGES)
        kept_fraction = bench.model.regression_activity \
            .selected_fraction()
        pruned = {stage: model.features.size
                  for stage, model in
                  bench.model.regression_activity.models.items()}
        accuracy_pruned = bench.accuracy(program)

        # re-train with an enormous feature budget (no pruning pressure)
        device = HardwareDevice()
        trainer = Trainer(device=device, activity_probes_per_class=20,
                          miso_groups=1, miso_group_size=128)
        trainer.config = trainer.config.__class__(
            samples_per_cycle=trainer.config.samples_per_cycle,
            kernel=trainer.config.kernel,
            stepwise_f_threshold=0.0,
            stepwise_max_features=120)
        unpruned_model = trainer.train()
        unpruned_fraction = unpruned_model.regression_activity \
            .selected_fraction()
        accuracy_unpruned = bench.accuracy(
            program,
            simulator=EMSim(unpruned_model,
                            core_config=device.core_config))
        return dict(total=total, kept_fraction=kept_fraction,
                    pruned=pruned, accuracy_pruned=accuracy_pruned,
                    unpruned_fraction=unpruned_fraction,
                    accuracy_unpruned=accuracy_unpruned)

    results = run_once(benchmark, experiment)
    per_stage = ", ".join(f"{stage}:{count}" for stage, count in
                          sorted(results["pruned"].items()))
    lines = [
        f"transition features available: {results['total']} "
        "(bits + per-register counts)",
        f"kept by step-wise selection: {results['kept_fraction']:.1%} "
        f"({per_stage})",
        f"  -> removed {1 - results['kept_fraction']:.1%} "
        "(paper: more than 65% removed)",
        "",
        f"accuracy with pruned features:   "
        f"{results['accuracy_pruned']:6.1%}",
        f"accuracy with a 5x feature budget: "
        f"{results['accuracy_unpruned']:6.1%} "
        f"(keeping {results['unpruned_fraction']:.1%})",
        "",
        "paper shape: pruning >65% of T costs essentially nothing -> " +
        ("reproduced"
         if results["accuracy_pruned"] >
         results["accuracy_unpruned"] - 0.02 else "NOT reproduced"),
    ]
    record("abl_stepwise", "\n".join(lines))

    assert results["kept_fraction"] < 0.35          # >65% removed
    assert results["accuracy_pruned"] > \
        results["accuracy_unpruned"] - 0.02
