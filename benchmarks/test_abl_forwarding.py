"""§IV ablation — data forwarding has no significant signal effect.

The paper "tested the effect of other micro-architectural events such as
data-forwarding on the signal and did not observe any significant
difference in the presence and/or absence of them": forwarding changes
*which cycles* things happen in (more stalls without it), but EMSim's
per-stage model tracks either configuration equally well.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import EMSim
from repro.hardware import HardwareDevice
from repro.workloads import RandomProgramBuilder


def test_abl_forwarding(bench, record, benchmark):
    program = RandomProgramBuilder(seed=88).program(150)

    def experiment():
        results = {}
        for forwarding in (True, False):
            config = replace(bench.device.core_config,
                             forwarding=forwarding)
            device = HardwareDevice(core_config=config)
            simulator = EMSim(bench.model, core_config=config)
            trace = simulator.run_trace(program)
            results[forwarding] = dict(
                accuracy=bench.accuracy(program, device=device,
                                        simulator=simulator),
                cycles=trace.num_cycles)
        return results

    results = run_once(benchmark, experiment)
    with_fw = results[True]
    without_fw = results[False]
    spread = abs(with_fw["accuracy"] - without_fw["accuracy"])
    lines = [
        "model trained on the forwarding core, applied to both designs:",
        f"  forwarding on:  accuracy {with_fw['accuracy']:6.1%} "
        f"({with_fw['cycles']} cycles)",
        f"  forwarding off: accuracy {without_fw['accuracy']:6.1%} "
        f"({without_fw['cycles']} cycles)",
        "",
        f"accuracy difference: {spread:.2%}",
        "paper shape: forwarding presence/absence has no significant "
        "signal-model effect -> " +
        ("reproduced" if spread < 0.02 else "NOT reproduced"),
    ]
    record("abl_forwarding", "\n".join(lines))
    assert spread < 0.02
    assert without_fw["cycles"] > with_fw["cycles"]  # timing does differ
