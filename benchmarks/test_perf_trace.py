"""Perf: the columnar activity-trace engine vs the legacy recording path.

The acceptance claims for the trace engine (docs/architecture.md):

* cold single-thread simulation records at least **2x** faster with the
  columnar trace than with the seed's object-graph path (kept as
  ``LegacyActivityTrace``, the bit-identity oracle),
* a serialized trace in the ``repro-trace/1`` codec is at least **3x**
  smaller than the legacy trace's pickle,
* a disk-cache hit deserializes at least **2x** faster through
  ``decode_trace`` than through ``pickle.loads``.

The measurement core (``repro.core.tracebench.run_trace_bench``, shared
with ``repro bench --mode trace``) asserts bit-identity between the two
recording paths on both cores and codec round-trip byte-stability
before reporting any ratio, so the speedups cannot come from computing
something different.  Emits the machine-readable
``benchmarks/results/BENCH_trace.json`` report (schema
``repro-bench/1``).  ``REPRO_BENCH_QUICK=1`` lowers the repetition
count so the bench fits the tier-1 time budget (``make bench-quick``)
and writes ``BENCH_trace.quick.json`` instead, keeping the committed
full-size artifact intact.
"""

import pytest

from conftest import bench_quick, run_once, write_bench_report
from repro.core.tracebench import run_trace_bench
from repro.profiling import disable_profiling, enable_profiling

QUICK = bench_quick()
REPS = 3 if QUICK else 9
SIMULATE_FLOOR = 2.0
SIZE_FLOOR = 3.0
DECODE_FLOOR = 2.0


@pytest.mark.benchmark(group="perf")
def test_trace_engine_speedup(benchmark, record):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            metrics = run_trace_bench(kernel="crc32", reps=REPS)
        finally:
            disable_profiling()
        return write_bench_report("trace", metadata=metrics,
                                  profiler=profiler)

    document = run_once(benchmark, experiment)
    lines = [f"trace engine on 'crc32', best of {REPS} reps"
             + (" (quick mode)" if QUICK else ""),
             f"cold simulate (in-order): legacy "
             f"{document['legacy_simulate_seconds'] * 1e3:7.1f} ms, "
             f"columnar "
             f"{document['columnar_simulate_seconds'] * 1e3:7.1f} ms "
             f"({document['simulate_speedup']:.2f}x, floor "
             f"{SIMULATE_FLOOR:.1f}x)",
             f"cold simulate (OoO): "
             f"{document['simulate_speedup_ooo']:.2f}x",
             f"serialized trace: pickle "
             f"{document['legacy_pickle_bytes']} B, codec "
             f"{document['encoded_bytes']} B "
             f"({document['size_ratio']:.1f}x, floor {SIZE_FLOOR:.1f}x)",
             f"cache-hit deserialize: unpickle "
             f"{document['unpickle_seconds'] * 1e3:6.2f} ms, decode "
             f"{document['decode_seconds'] * 1e3:6.2f} ms "
             f"({document['decode_speedup']:.2f}x, floor "
             f"{DECODE_FLOOR:.1f}x)",
             f"derived views rebuild: "
             f"{document['derive_speedup']:.2f}x",
             f"bit-identical: {document['bit_identical']}"]
    record("perf_trace", "\n".join(lines))
    assert document["bit_identical"]
    assert document["simulate_speedup"] >= SIMULATE_FLOOR
    assert document["size_ratio"] >= SIZE_FLOOR
    assert document["decode_speedup"] >= DECODE_FLOOR
