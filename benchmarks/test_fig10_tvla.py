"""Fig. 10 — TVLA leakage assessment of AES-128, measured vs simulated.

The paper runs AES-128 on the core, computes the fixed-vs-random TVLA on
the measured signal and on EMSim's simulated signal, and finds the
simulated assessment "highly matched with the real measurement and
follows the same pattern (and values)".
"""

import os

import numpy as np
from conftest import run_once

from repro.leakage import DEFAULT_KEY, aes_program, tvla

FULL = os.environ.get("EMSIM_FULL_FIG10", "0") == "1"
ROUNDS = 10 if FULL else 2
NUM_TRACES = 24 if FULL else 16
NOISE_RMS = 0.08


def test_fig10_aes_tvla(bench, record, benchmark):
    def experiment():
        spc = bench.spc
        noise = np.random.default_rng(404)

        def real(plaintext):
            program = aes_program(DEFAULT_KEY, plaintext, rounds=ROUNDS)
            return bench.device.capture_single(
                program, noise_rms=NOISE_RMS).signal

        def simulated(plaintext):
            program = aes_program(DEFAULT_KEY, plaintext, rounds=ROUNDS)
            signal = bench.simulator.simulate(program).signal
            return signal + noise.normal(0, NOISE_RMS,
                                         size=signal.shape)

        results = {}
        for label, source in (("real", real), ("sim", simulated)):
            rng = np.random.default_rng(7)
            fixed = [source(list(range(16))) for _ in range(NUM_TRACES)]
            rand = [source(list(rng.integers(0, 256, 16)))
                    for _ in range(NUM_TRACES)]
            results[label] = tvla(fixed, rand)
        real_profile = results["real"].per_cycle_max(spc)
        sim_profile = results["sim"].per_cycle_max(spc)
        length = min(len(real_profile), len(sim_profile))
        correlation = float(np.corrcoef(real_profile[:length],
                                        sim_profile[:length])[0, 1])
        return results, correlation

    (results, correlation) = run_once(benchmark, experiment)
    spc = bench.spc
    lines = [f"AES-128 ({ROUNDS} rounds, {NUM_TRACES}+{NUM_TRACES} "
             "traces), fixed-vs-random TVLA:"]
    for label, result in results.items():
        profile = ", ".join(f"{value:5.1f}"
                            for value in result.phase_profile(spc))
        lines.append(f"  {label:>4s}: max|t| = {result.max_abs_t:6.1f}  "
                     f"leaks = {result.leaks}  "
                     f"time profile = [{profile}]")
    lines.append("")
    lines.append(f"leakage-profile correlation (real vs simulated): "
                 f"{correlation:.2f}")
    lines.append("paper shape: the simulated TVLA follows the same "
                 "pattern and values -> " +
                 ("reproduced" if correlation > 0.5 and
                  results["real"].leaks == results["sim"].leaks
                  else "NOT reproduced"))
    if not FULL:
        lines.append("(reduced-round run; EMSIM_FULL_FIG10=1 for "
                     "10-round AES)")
    record("fig10_tvla", "\n".join(lines))

    assert results["real"].leaks and results["sim"].leaks
    assert correlation > 0.5
    assert abs(results["real"].leaky_fraction -
               results["sim"].leaky_fraction) < 0.2
