"""Perf: the streaming signal-analytics engine vs its direct oracles.

The acceptance floors for the signal fast path (docs/architecture.md):

* planned FFT/overlap-add synthesis at least **3x** faster than the
  direct ``np.convolve`` oracle on a >= 4096-cycle trace,
* cold banded-Cholesky batch deconvolution at least **2x** faster than
  the legacy per-geometry sparse-LU rebuild (caches cleared for both
  arms every repetition),
* a streaming Welford TVLA over a 2048-trace campaign peaking at least
  **5x** less memory than the batch materialize-then-test path.

The measurement core (``repro.core.signalbench.run_signal_bench``,
shared with ``repro bench --mode signal``) asserts <= 1e-9 agreement
with the direct synthesis oracle, the LU deconvolution oracle, and the
batch Welch t-statistic before reporting any ratio, so the wins cannot
come from computing something different.  Emits the machine-readable
``benchmarks/results/BENCH_signal.json`` report (schema
``repro-bench/1``).  ``REPRO_BENCH_QUICK=1`` lowers the repetition and
trace counts so the bench fits the tier-1 time budget (``make
bench-quick``) and writes ``BENCH_signal.quick.json`` instead, keeping
the committed full-size artifact intact.
"""

import pytest

from conftest import bench_quick, run_once, write_bench_report
from repro.core.signalbench import run_signal_bench
from repro.profiling import disable_profiling, enable_profiling

QUICK = bench_quick()
# quick mode keeps the full 4096-cycle synthesis, so it keeps most of
# the best-of repetitions too — the savings come from the smaller TVLA
# campaign; fewer reps made the synthesis ratio load-sensitive
REPS = 5 if QUICK else 7
TVLA_TRACES = 256 if QUICK else 1024
SYNTH_FLOOR = 3.0
DECONV_FLOOR = 2.0
RSS_FLOOR = 5.0


@pytest.mark.benchmark(group="perf")
def test_signal_engine_speedup(benchmark, record):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            metrics = run_signal_bench(tvla_traces=TVLA_TRACES,
                                       reps=REPS)
        finally:
            disable_profiling()
        return write_bench_report("signal", metadata=metrics,
                                  profiler=profiler)

    document = run_once(benchmark, experiment)
    lines = [f"signal engine, best of {REPS} reps"
             + (" (quick mode)" if QUICK else ""),
             f"synthesis ({document['synthesis_cycles']} cycles): "
             f"direct {document['direct_synth_seconds'] * 1e3:7.2f} ms, "
             f"engine {document['engine_synth_seconds'] * 1e3:7.2f} ms "
             f"({document['synthesis_speedup']:.2f}x, floor "
             f"{SYNTH_FLOOR:.1f}x)",
             f"cold batch deconvolution ({document['deconv_traces']} x "
             f"{document['deconv_cycles']} cycles): LU "
             f"{document['lu_deconv_seconds'] * 1e3:7.2f} ms, banded "
             f"{document['banded_deconv_seconds'] * 1e3:7.2f} ms "
             f"({document['batch_deconv_speedup']:.2f}x, floor "
             f"{DECONV_FLOOR:.1f}x)",
             f"TVLA peak memory ({document['tvla_traces_per_group']} "
             f"traces/group): batch "
             f"{document['batch_tvla_peak_bytes']} B, streaming "
             f"{document['streaming_tvla_peak_bytes']} B "
             f"({document['tvla_rss_ratio']:.1f}x, floor "
             f"{RSS_FLOOR:.1f}x)",
             f"oracle agreement: synthesis "
             f"{document['synthesis_max_error']:.2e}, deconvolution "
             f"{document['deconv_max_error']:.2e}, t-values "
             f"{document['tvla_max_error']:.2e}"]
    record("perf_signal", "\n".join(lines))
    assert document["oracle_agreement"]
    assert document["synthesis_speedup"] >= SYNTH_FLOOR
    assert document["batch_deconv_speedup"] >= DECONV_FLOOR
    assert document["tvla_rss_ratio"] >= RSS_FLOOR
