"""Perf: incremental repro-lint (warm cache) vs a cold whole-repo run.

The acceptance claims for the incremental analysis engine
(docs/static-analysis.md):

* a warm re-run after touching **one** module re-summarizes only that
  module and its import-graph dependents, finishing at least **3x**
  faster than a cold run over the same tree,
* cached and cold runs render **byte-identical** reports — the cache
  can make the analyzer faster, never different.

The bench copies the repo's lint surface (``src`` + ``tools`` +
``docs`` + ``pyproject.toml``) into a scratch tree so touching files cannot dirty
the working copy, then drives the same :class:`Analyzer` the CLI uses:
a cold run into an empty cache, a warm unchanged run, and warm runs
after appending a comment to ``src/repro/cli.py`` (a leaf entry-point
module: its only dependent is ``repro.__main__``, so the invalidated
closure is exactly the two modules a one-line edit can affect).  Emits
``benchmarks/results/BENCH_lint.json`` (schema ``repro-bench/1``);
``REPRO_BENCH_QUICK=1`` lowers the repetition count and writes
``BENCH_lint.quick.json`` instead.
"""

import os
import shutil
import sys
import time

import pytest

from conftest import bench_quick, run_once, write_bench_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.analysis import Analyzer  # noqa: E402
from tools.analysis.baseline import apply_baseline  # noqa: E402
from tools.analysis.config import load_config  # noqa: E402
from tools.analysis.report import render_json  # noqa: E402
from tools.analysis.rules import all_rules  # noqa: E402

QUICK = bench_quick()
REPS = 1 if QUICK else 3
TOUCH_FLOOR = 3.0
TOUCHED = os.path.join("src", "repro", "cli.py")


def _copy_lint_surface(destination: str) -> None:
    """Copy the analyzed tree (plus its config) into ``destination``."""
    ignore = shutil.ignore_patterns("__pycache__", "*.pyc",
                                    ".repro-lint-cache")
    os.makedirs(destination, exist_ok=True)
    for tree in ("src", "tools", "docs"):
        shutil.copytree(os.path.join(REPO_ROOT, tree),
                        os.path.join(destination, tree), ignore=ignore)
    shutil.copy(os.path.join(REPO_ROOT, "pyproject.toml"), destination)
    for entry in os.listdir(REPO_ROOT):
        # doc-contract rules follow links from docs/ to the top-level
        # markdown (README.md and friends)
        if entry.endswith(".md"):
            shutil.copy(os.path.join(REPO_ROOT, entry), destination)


def _timed_run(root: str, cache_dir: str):
    """One analyzer run; returns ``(seconds, rendered report bytes)``."""
    config = load_config(root)
    analyzer = Analyzer(all_rules(), config, root=root,
                        cache_dir=cache_dir)
    start = time.perf_counter()
    result = analyzer.run()
    new, stale = apply_baseline(result.findings, [])
    report = render_json(result, new, stale)
    return time.perf_counter() - start, report, result


@pytest.mark.benchmark(group="perf")
def test_incremental_lint_speedup(benchmark, record, tmp_path):
    root = str(tmp_path / "worktree")
    _copy_lint_surface(root)
    cache_dir = str(tmp_path / "cache")

    def experiment():
        cold_seconds, cold_report, cold_result = _timed_run(
            root, str(tmp_path / "cold-cache-0"))
        for rep in range(1, REPS):
            seconds, report, _ = _timed_run(
                root, str(tmp_path / f"cold-cache-{rep}"))
            cold_seconds = min(cold_seconds, seconds)
            assert report == cold_report

        _timed_run(root, cache_dir)  # populate the shared cache
        warm_seconds, warm_report = None, None
        for _ in range(REPS):
            seconds, report, _ = _timed_run(root, cache_dir)
            warm_seconds = seconds if warm_seconds is None \
                else min(warm_seconds, seconds)
            warm_report = report

        touch_seconds = None
        touched = os.path.join(root, TOUCHED)
        for rep in range(REPS):
            # a distinct edit per rep so every rep is a genuine
            # one-module invalidation, not a fully-warm replay
            with open(touched, "a") as handle:
                handle.write(f"\n# perf-bench touch {rep}\n")
            seconds, report, _ = _timed_run(root, cache_dir)
            touch_seconds = seconds if touch_seconds is None \
                else min(touch_seconds, seconds)
            assert report == cold_report

        return write_bench_report("lint", metadata={
            "files_scanned": cold_result.checked_files,
            "findings": len(cold_result.findings),
            "touched_module": TOUCHED,
            "reps": REPS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "touch_seconds": touch_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "touch_speedup": cold_seconds / touch_seconds,
            "byte_identical": warm_report == cold_report,
        })

    document = run_once(benchmark, experiment)
    lines = [f"incremental repro-lint over "
             f"{document['files_scanned']} files, best of {REPS} reps"
             + (" (quick mode)" if QUICK else ""),
             f"cold run:            {document['cold_seconds'] * 1e3:7.1f}"
             " ms",
             f"warm, unchanged:     {document['warm_seconds'] * 1e3:7.1f}"
             f" ms ({document['warm_speedup']:.2f}x)",
             f"warm, one module:    {document['touch_seconds'] * 1e3:7.1f}"
             f" ms ({document['touch_speedup']:.2f}x, floor "
             f"{TOUCH_FLOOR:.1f}x)",
             f"touched module: {document['touched_module']}",
             f"byte-identical reports: {document['byte_identical']}"]
    record("perf_lint", "\n".join(lines))
    assert document["byte_identical"]
    assert document["touch_speedup"] >= TOUCH_FLOOR
