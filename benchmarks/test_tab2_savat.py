"""Table II — SAVAT matrix for {LDM, LDC, NOP, ADD, MUL, DIV} pairs.

The paper computes the SAVAT metric (spectral spike energy of an A/B
alternation microbenchmark) from real measurements (R) and from EMSim
signals (S) and shows S closely tracks R for every pair.
"""

import numpy as np
from conftest import run_once

from repro.leakage import (SAVAT_INSTRUCTIONS, format_matrix, savat_matrix)


def test_tab2_savat_matrix(bench, record, benchmark):
    def experiment():
        spc = bench.spc

        def real_source(program):
            measurement = bench.device.capture_ideal(program)
            return measurement.signal, measurement.num_cycles

        def sim_source(program):
            result = bench.simulator.simulate(program)
            return result.signal, result.num_cycles

        real = savat_matrix(real_source, spc)
        sim = savat_matrix(sim_source, spc)
        return real, sim

    real, sim = run_once(benchmark, experiment)
    lines = ["SAVAT, real measurements (R):", format_matrix(real), "",
             "SAVAT, EMSim simulation (S):", format_matrix(sim), ""]

    real_values = np.array([real[key] for key in sorted(real)])
    sim_values = np.array([sim[key] for key in sorted(sim)])
    correlation = float(np.corrcoef(real_values, sim_values)[0, 1])
    lines.append(f"R-vs-S correlation over all 36 pairs: "
                 f"{correlation:.3f}")

    # structural checks mirroring Table II
    diag = [real[(kind, kind)] for kind in SAVAT_INSTRUCTIONS]
    off_diag_mean = float(np.mean(
        [value for key, value in real.items() if key[0] != key[1]]))
    lines.append(f"diagonal (A==B) mean: {np.mean(diag):.3f}  vs "
                 f"off-diagonal mean: {off_diag_mean:.3f}")
    lines.append("")
    lines.append("paper shape: simulated values highly matched with "
                 "real -> " + ("reproduced" if correlation > 0.85
                               else "NOT reproduced"))
    lines.append("deviation: the paper's LDM rows dominate its Table II "
                 "(loud DRAM bus);")
    lines.append("our synthetic memory radiates less during miss stalls, "
                 "so load-hit rows lead here.")
    record("tab2_savat", "\n".join(lines))

    assert correlation > 0.85
    # the diagonal is near-silent (A vs A gives no alternation)
    assert np.mean(diag) < 0.2 * off_diag_mean
    # symmetric-ish: SAVAT(A,B) ~ SAVAT(B,A)
    asym = [abs(real[(a, b)] - real[(b, a)])
            for a in SAVAT_INSTRUCTIONS for b in SAVAT_INSTRUCTIONS
            if a < b]
    scale = max(real.values())
    assert max(asym) < 0.5 * scale