"""Table I — clustering the RV32IM ISA into 7 EM-signature clusters.

Hierarchical agglomerative clustering with a cross-correlation distance
over the NOP -> inst -> NOP signature waveforms (the signal during the
instruction's pipeline transit).  The paper finds 7 clusters — ALU, Shift,
MUL/DIV, Load(memory), Store, Cache(load-hit), Branch — mirroring the
instructions' microarchitectural behaviour, which cuts model building from
~300M to ~16k measurements.

Note: in the paper's core MUL and DIV share one multi-cycle unit and land
in one cluster; our default core gives DIV a longer latency, so the probes
here run on a core configured with equal MUL/DIV latency to match the
paper's design point.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import (all_combinations, cluster_instruction_signatures,
                        double_load_probe, isolation_probe,
                        probe_instruction_seq, warmed_branch_probe)
from repro.hardware import HardwareDevice

# shared small operand patterns ("when the operands are similar"):
# signatures are concatenated over a few patterns so value-specific
# quirks average out and the instruction *type* dominates the distance;
# rs1 < rs2 in every set, so the probed branches (beq/bge/bgeu) resolve
# not-taken uniformly — the cluster reflects the branch *unit*, not the
# outcome-dependent fetch redirect
OPERAND_SETS = (dict(rs1_value=1, rs2_value=2),
                dict(rs1_value=3, rs2_value=5),
                dict(rs1_value=11, rs2_value=13))

PROBED = {
    "alu": ("add", "sub", "xor", "or", "and", "slt", "addi", "xori"),
    "shift": ("sll", "srl", "sra", "slli", "srli"),
    "muldiv": ("mul", "mulh", "div", "rem"),
    "load": ("lw", "lh", "lb", "lbu"),
    "store": ("sw", "sh", "sb"),
    "branch": ("beq", "bge", "bgeu"),
}

WINDOW_CYCLES = 14


_NOP_REFERENCE = {}


def _nop_reference(device, spc):
    """Steady NOP-flow waveform window used as the common baseline."""
    key = id(device)
    if key not in _NOP_REFERENCE:
        from repro.workloads import nop_padded
        program = nop_padded([], before=40, after=4)
        measurement = device.capture_ideal(program)
        _NOP_REFERENCE[key] = measurement.signal
    return _NOP_REFERENCE[key]


def _transit_signature(device, program, name, occurrence, spc):
    """Baseline-subtracted signal slice while the instruction transits.

    The window anchors on the ``occurrence``-th *active* Fetch of the
    named instruction (robust to squashed wrong-path fetches shifting
    dynamic sequence numbers).  Subtracting the steady NOP-flow waveform
    leaves only the instruction-specific emission, so the clustering
    distance is not dominated by the shared pipeline background.
    """
    measurement = device.capture_ideal(program)
    fetches = [cycle for cycle, occ
               in enumerate(measurement.trace.occupancy["F"])
               if occ.active and occ.instr is not None
               and occ.instr.name == name]
    start = fetches[occurrence]
    window = measurement.signal[start * spc:
                                (start + WINDOW_CYCLES) * spc]
    reference = _nop_reference(device, spc)[start * spc:
                                            (start + WINDOW_CYCLES) * spc]
    # a probe near the end of its program yields a short window; compare
    # only the overlapping part
    length = min(len(window), len(reference))
    return window[:length] - reference[:length]


def test_tab1_isa_clusters(bench, record, benchmark):
    config = replace(bench.device.core_config, div_latency=3)
    device = HardwareDevice(core_config=config)
    spc = bench.spc

    import numpy as np

    def experiment():
        signatures = {}
        for family, names in PROBED.items():
            for name in names:
                parts = []
                for operands in OPERAND_SETS:
                    if family == "branch":
                        # measure the second, predictor-warmed instance
                        probe = warmed_branch_probe(name, **operands)
                        extra = 1
                    else:
                        probe = isolation_probe(name, **operands)
                        extra = 0
                    # skip same-mnemonic instructions in the operand
                    # setup (e.g. the li-expansion addi/lui)
                    seq = probe_instruction_seq(probe)
                    occurrence = extra + sum(
                        1 for instr in probe.instructions[:seq]
                        if instr.name == name)
                    parts.append(_transit_signature(device, probe, name,
                                                    occurrence, spc))
                signatures[name] = np.concatenate(parts)
        # the "Cache" cluster: loads that hit (second access of a pair)
        for name in ("lw", "lh", "lb"):
            parts = []
            for offset in (0, 64, 224):
                probe = double_load_probe(name, offset=offset)
                parts.append(_transit_signature(device, probe, name,
                                                1, spc))  # second load
            signatures[f"{name}$hit"] = np.concatenate(parts)
        return cluster_instruction_signatures(signatures, num_clusters=7)

    result = run_once(benchmark, experiment)
    lines = ["hierarchical clustering of instruction EM signatures:",
             result.table(), "",
             f"clusters found: {result.num_clusters} "
             "(paper Table I: 7)"]

    # hardware-distinct families must not be split across clusters
    violations = []
    for family in ("muldiv", "load", "store", "branch"):
        labels = {result.labels[name] for name in PROBED[family]}
        if len(labels) != 1:
            violations.append(family)
    hit_labels = {result.labels[f"{name}$hit"]
                  for name in ("lw", "lh", "lb")}
    if len(hit_labels) != 1:
        violations.append("cache")
    lines.append("hardware-distinct families intact: " +
                 ("MUL/DIV, Load, Store, Cache, Branch"
                  if not violations else f"violations: {violations}"))
    alu_cluster = result.labels["add"]
    shift_together = result.labels["sll"] == alu_cluster
    lines.append("deviation vs Table I: our emitter's ALU and shifter "
                 "signatures are close enough to share a cluster"
                 if shift_together else
                 "ALU and Shift separate as in Table I")
    lines.append("")
    lines.append(f"measurement reduction: {len(all_combinations())} "
                 "combinations of 7 representatives instead of ~3e8 "
                 "(paper: 300M -> ~16k)")
    record("tab1_clusters", "\n".join(lines))

    assert result.num_clusters == 7
    assert not violations
    # loads that hit the cache must cluster apart from loads that miss
    assert result.labels["lw$hit"] != result.labels["lw"]
    # ...and apart from stores and ALU operations
    assert result.labels["lw"] != result.labels["sw"]
    assert result.labels["lw"] != result.labels["add"]
    assert result.labels["mul"] != result.labels["add"]
    assert result.labels["beq"] != result.labels["add"]
    assert len(all_combinations()) == 16807
