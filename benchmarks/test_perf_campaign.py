"""Perf: batched/parallel measurement campaign vs the sequential engine.

The acceptance claim for the batch layer (docs/architecture.md): a
256-program training-style campaign through ``measurement_campaign``
runs at least 3x faster with ``workers=8`` than with ``workers=1``,
while agreeing to within the 1e-9 numerical contract.  On machines with
fewer than 8 CPUs the pool shrinks to the CPU count and the speedup
comes from the batched engine itself (vectorized repetition folding, the
emitter's lag-factored fast evaluator, and the cached multi-RHS
deconvolver).

Emits the machine-readable ``benchmarks/results/BENCH_sim.json`` report
(schema ``repro-bench/1``) so the perf trajectory is tracked across PRs.
"""

import time

import numpy as np
import pytest

from conftest import run_once, write_bench_report
from repro.core import measurement_campaign
from repro.hardware import HardwareDevice
from repro.profiling import disable_profiling, enable_profiling
from repro.workloads import RandomProgramBuilder

PROGRAMS = 256
PROGRAM_LENGTH = 32
REPETITIONS = 50
WORKERS = 8
SPEEDUP_FLOOR = 3.0
CONTRACT = 1e-9


def _campaign(workers):
    device = HardwareDevice(seed=3)
    builder = RandomProgramBuilder(seed=0)
    programs = [builder.program(PROGRAM_LENGTH, name=f"bench_{i:04d}")
                for i in range(PROGRAMS)]
    start = time.perf_counter()
    probes = measurement_campaign(device, programs,
                                  repetitions=REPETITIONS,
                                  workers=workers, seed=0)
    return probes, time.perf_counter() - start


@pytest.mark.benchmark(group="perf")
def test_campaign_speedup(benchmark, record):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            sequential, sequential_seconds = _campaign(1)
            batched, batched_seconds = _campaign(WORKERS)
        finally:
            disable_profiling()
        speedup = sequential_seconds / batched_seconds
        max_diff = max(
            max(float(np.abs(a.signal - b.signal).max()),
                float(np.abs(a.amplitudes - b.amplitudes).max()))
            for a, b in zip(sequential, batched))
        document = write_bench_report(
            "sim",
            metadata={
                "benchmark": "measurement_campaign",
                "programs": PROGRAMS,
                "program_length": PROGRAM_LENGTH,
                "repetitions": REPETITIONS,
                "workers_sequential": 1,
                "workers_batched": WORKERS,
                "sequential_seconds": sequential_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
                "max_abs_diff": max_diff,
            }, profiler=profiler)
        return document

    document = run_once(benchmark, experiment)
    lines = [f"{PROGRAMS} programs x {PROGRAM_LENGTH} instructions x "
             f"{REPETITIONS} repetitions",
             f"sequential (workers=1): "
             f"{document['sequential_seconds']:7.2f} s",
             f"batched  (workers={WORKERS}): "
             f"{document['batched_seconds']:7.2f} s",
             f"speedup: {document['speedup']:5.2f}x  "
             f"(floor {SPEEDUP_FLOOR:.1f}x)",
             f"max abs diff: {document['max_abs_diff']:.3e}  "
             f"(contract {CONTRACT:.0e})"]
    record("perf_campaign", "\n".join(lines))
    assert document["max_abs_diff"] <= CONTRACT
    assert document["speedup"] >= SPEEDUP_FLOOR
