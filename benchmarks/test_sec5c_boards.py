"""§V-C — board variability: DE1 (Cyclone-II) and ARTY (Artix-35T).

Different CMOS technology changes the emissions: the model trained on the
DE0-CV degrades badly on other boards.  Retraining the baseline amplitudes
A and activity factors c on the new board restores accuracy — and the MISO
combination coefficients M transfer unchanged, because they are set by the
(unchanged) logic design and probe geometry.
"""

import numpy as np
from conftest import run_once

from repro.core import EMSim, Trainer, coverage_groups
from repro.hardware import ARTY, DE1, HardwareDevice


def test_sec5c_board_retraining(bench, record, benchmark):
    program = coverage_groups(group_size=192, seed=56, limit_groups=1)[0]

    def experiment():
        results = {}
        for board in (DE1, ARTY):
            device = HardwareDevice(board=board)
            stale = bench.accuracy(program, device=device)

            # retrain everything on the new board...
            trainer = Trainer(device=device,
                              activity_probes_per_class=12,
                              miso_groups=1, miso_group_size=128)
            fresh = trainer.train()
            full = bench.accuracy(
                program, device=device,
                simulator=EMSim(fresh,
                                core_config=device.core_config))
            # ...then substitute the DE0-CV-fitted M: §V-C says the
            # combination coefficients need no retraining
            transplanted_miso = dict(fresh.miso)
            fresh.miso = dict(bench.model.miso)
            transferred = bench.accuracy(
                program, device=device,
                simulator=EMSim(fresh,
                                core_config=device.core_config))
            fresh.miso = transplanted_miso
            results[board.name] = dict(stale=stale, full=full,
                                       transferred=transferred)
        return results

    results = run_once(benchmark, experiment)
    lines = ["DE0-CV-trained model on other boards (paper §V-C):",
             f"  {'board':<7s} {'stale':>7s} {'A,c retrained + base M':>24s}"
             f" {'fully retrained':>16s}"]
    for board, info in results.items():
        lines.append(f"  {board:<7s} {info['stale']:>7.1%} "
                     f"{info['transferred']:>24.1%} "
                     f"{info['full']:>16.1%}")
    lines.append("")
    transfer_ok = all(abs(info["transferred"] - info["full"]) < 0.02
                      for info in results.values())
    lines.append("paper shape: A and c must be retrained, M transfers "
                 "unchanged -> " +
                 ("reproduced" if transfer_ok else "NOT reproduced"))
    record("sec5c_boards", "\n".join(lines))

    for board, info in results.items():
        assert info["stale"] < info["full"] - 0.05, board
        assert info["full"] > 0.90, board
        # the base board's M works as well as the board's own fit
        assert abs(info["transferred"] - info["full"]) < 0.02, board