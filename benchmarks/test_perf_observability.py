"""Perf: run-record observability overhead on a supervised campaign.

The acceptance claim for the observability layer (docs/observability.md):
recording a campaign — per-item span/metric flushing, the campaign
event stream, and the final ``manifest.json`` — costs **< 5 %** wall
time on the 256-item reference campaign.  Both arms run the identical
fault-free workload at ``workers=1`` (the serial supervised path, where
per-item instrumentation cost is least amortized and therefore worst
case); each arm takes the min of two runs so one scheduler hiccup
cannot fake an overhead regression.

Emits ``benchmarks/results/BENCH_observability.json`` (schema
``repro-bench/1``).  ``REPRO_BENCH_QUICK=1`` shrinks the campaign to 64
items and writes ``BENCH_observability.quick.json`` instead.
"""

import json
import os
import time

import pytest

from conftest import bench_quick, run_once, write_bench_report
from repro.observability import (finish_run, render_report, start_run,
                                 validate_manifest)
from repro.parallel import spawn_seed, supervised_map
from repro.profiling import disable_profiling, enable_profiling

QUICK = bench_quick()
ITEMS = 64 if QUICK else 256
ROUNDS = 2
OVERHEAD_CEILING = 0.05


def _payload(index):
    """Deterministic seeded computation sized like a real campaign item
    (~20 ms), matching the resume bench's workload so the two overhead
    claims (checkpoint < 5 %, recording < 5 %) are measured against the
    same reference campaign."""
    import numpy as np

    rng = spawn_seed(7, index)
    signal = rng.normal(size=65536)
    for _ in range(16):
        signal = np.fft.irfft(np.fft.rfft(signal), len(signal))
    return signal[:128].copy()


def _campaign():
    start = time.perf_counter()
    results, ledger = supervised_map(_payload, list(range(ITEMS)),
                                     workers=1)
    assert ledger.complete
    return time.perf_counter() - start


def _baseline_arm():
    return min(_campaign() for _ in range(ROUNDS))


def _recorded_arm(trace_root):
    best = None
    manifest_path = None
    for round_index in range(ROUNDS):
        trace_dir = os.path.join(trace_root, f"round_{round_index}")
        start_run(trace_dir, manifest=True, command="bench-observability")
        try:
            seconds = _campaign()
        finally:
            manifest_path = finish_run()
        best = seconds if best is None else min(best, seconds)
    return best, manifest_path


@pytest.mark.benchmark(group="perf")
def test_observability_overhead(benchmark, record, tmp_path):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            baseline_seconds = _baseline_arm()
            recorded_seconds, manifest_path = _recorded_arm(
                str(tmp_path / "traces"))
        finally:
            disable_profiling()
        overhead = recorded_seconds / baseline_seconds - 1.0

        # the recorded arm must have produced a schema-valid manifest
        # that renders; an "overhead" number for a recording that wrote
        # nothing would be meaningless
        with open(manifest_path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate_manifest(document)
        report_text = render_report(document)
        assert "# Run report: bench-observability" in report_text

        return write_bench_report(
            "observability",
            metadata={
                "benchmark": "observability_overhead",
                "items": ITEMS,
                "workers": 1,
                "rounds": ROUNDS,
                "baseline_seconds": baseline_seconds,
                "recorded_seconds": recorded_seconds,
                "recording_overhead": overhead,
                "manifest": manifest_path,
                "manifest_valid": True,
            }, profiler=profiler)

    document = run_once(benchmark, experiment)
    lines = [f"{ITEMS}-item fault-free campaign at workers=1, min of "
             f"{ROUNDS} runs per arm" + (" (quick mode)" if QUICK else ""),
             f"baseline (no recording): "
             f"{document['baseline_seconds']:6.2f} s",
             f"recorded (--trace-dir):  "
             f"{document['recorded_seconds']:6.2f} s",
             f"recording overhead: "
             f"{document['recording_overhead']:+6.2%}  "
             f"(ceiling {OVERHEAD_CEILING:.0%})",
             f"manifest schema-valid: {document['manifest_valid']}"]
    record("perf_observability", "\n".join(lines))
    assert document["manifest_valid"]
    assert document["recording_overhead"] < OVERHEAD_CEILING
