"""Fig. 4 — MISO combination of simultaneously-active stages.

Two instructions (ADD, SHIFT) overlap in the pipeline; each cycle's signal
is the fitted linear combination of the per-stage sources (Eq. 9), not the
plain sum of the isolated signals.
"""

import numpy as np
from conftest import run_once

from repro.core import isolation_probe, pair_probe, probe_instruction_seq
from repro.signal import (estimate_cycle_amplitudes, simulation_accuracy)


def test_fig4_miso_combination(bench, record, benchmark):
    operands = dict(rs1_value=0x0F0F0F0F, rs2_value=0x12345678)
    pair = pair_probe("add", "sll", **operands)

    def experiment():
        spc = bench.spc
        kernel = bench.model.config.kernel
        # isolated amplitudes of each instruction (Fig. 4 top)
        isolated = {}
        for name in ("add", "sll"):
            probe = isolation_probe(name, **operands)
            measurement = bench.device.capture_ideal(probe)
            amplitudes = estimate_cycle_amplitudes(measurement.signal,
                                                   kernel, spc)
            seq = probe_instruction_seq(probe)
            start = min(measurement.trace.cycles_of(seq, "F"))
            isolated[name] = amplitudes[start:start + 5]

        # combined execution (Fig. 4 bottom)
        measured = bench.device.capture_ideal(pair)
        simulated = bench.simulator.simulate(pair)
        length = min(len(measured.signal), len(simulated.signal))
        accuracy = simulation_accuracy(simulated.signal[:length],
                                       measured.signal[:length], spc)

        # naive alternative: sum of isolated per-cycle amplitudes with
        # unit coefficients instead of the fitted M
        naive_model_error = 0.0
        measured_amplitudes = estimate_cycle_amplitudes(measured.signal,
                                                        kernel, spc)
        seq = probe_instruction_seq(pair)
        overlap = min(measured.trace.cycles_of(seq, "D"))
        naive = isolated["add"][2] + isolated["sll"][1] - \
            bench.model.nop_level
        fitted = float(simulated.amplitudes[overlap + 1])
        actual = float(measured_amplitudes[overlap + 1])
        naive_model_error = abs(naive - actual)
        fitted_error = abs(fitted - actual)
        return dict(accuracy=accuracy, naive_error=naive_model_error,
                    fitted_error=fitted_error, actual=actual,
                    naive=naive, fitted=fitted)

    results = run_once(benchmark, experiment)
    lines = [
        "NOP, ADD, SHIFT, NOP sequence (two stages active per cycle):",
        f"  EMSim (fitted MISO coefficients M): accuracy "
        f"{results['accuracy']:6.1%}",
        "",
        "overlap cycle amplitude (ADD in EX while SHIFT in DE):",
        f"  measured:                      {results['actual']:6.2f}",
        f"  EMSim fitted combination:      {results['fitted']:6.2f} "
        f"(error {results['fitted_error']:.2f})",
        f"  naive sum of isolated signals: {results['naive']:6.2f} "
        f"(error {results['naive_error']:.2f})",
        "",
        "paper shape: the combined signal is a *fitted* linear",
        "combination of the individual sources -> " +
        ("reproduced" if results["fitted_error"] <=
         results["naive_error"] + 0.05 else "NOT reproduced"),
    ]
    record("fig4_miso", "\n".join(lines))
    assert results["accuracy"] > 0.85
    assert results["fitted_error"] <= results["naive_error"] + 0.05


def test_fig4_pair_accuracy_sweep(bench, record, benchmark):
    """Accuracy across several instruction pairings."""
    pairs = [("add", "sll"), ("mul", "add"), ("lw", "add"),
             ("sw", "sll"), ("add", "add")]

    def experiment():
        scores = {}
        for first, second in pairs:
            program = pair_probe(first, second, rs1_value=0x5A5A00FF,
                                 rs2_value=0x00FF5A5A)
            scores[f"{first}+{second}"] = bench.accuracy(program)
        return scores

    scores = run_once(benchmark, experiment)
    lines = ["pairwise overlap accuracy (simulated vs measured):"]
    for pair_name, score in scores.items():
        lines.append(f"  {pair_name:<10s} {score:6.1%}")
    record("fig4_miso_pairs", "\n".join(lines))
    assert min(scores.values()) > 0.85
