"""Fig. 6 — modeling cache misses vs assuming every access hits.

A load that misses stalls for two extra cycles (three stall cycles in
total); EMSim detects this from its cache model.  Without cache modeling
the simulated timeline is shorter and the signal drifts out of phase from
the miss onward.
"""

import numpy as np
from conftest import run_once

from repro.core import double_load_probe, isolation_probe
from repro.signal import per_cycle_similarities, simulation_accuracy


def _missing_loads_program():
    """Loads striding by one cache line: every access misses.

    Interleaved ALU work makes the waveform distinctive, so the timeline
    shift of the all-hits assumption (2 cycles lost per miss) destroys
    the alignment — the paper's Fig. 6 bottom-left deviation.
    """
    from repro.isa import Instruction
    from repro.workloads import wrap_program
    code = []
    for index in range(12):
        code.append(Instruction("lw", rd=5, rs1=3, imm=32 * index))
        code.append(Instruction("xor", rd=6, rs1=6, rs2=5))
        code.append(Instruction("slli", rd=7, rs1=6, imm=3))
    return wrap_program(code, name="stride_misses")


def test_fig6_cache_miss_modeling(bench, record, benchmark):
    miss_probe = _missing_loads_program()
    hit_probe = double_load_probe("lw", offset=256)

    def experiment():
        spc = bench.spc
        no_cache = bench.simulator.with_switches(model_cache=False)
        results = {}
        for label, probe in (("miss", miss_probe), ("hit", hit_probe)):
            measured = bench.device.capture_ideal(probe)
            modeled = bench.simulator.simulate(probe)
            ignored = no_cache.simulate(probe)
            length = min(len(measured.signal), len(modeled.signal))
            length_ignored = min(len(measured.signal),
                                 len(ignored.signal))
            results[label] = {
                "measured_cycles": measured.num_cycles,
                "modeled_cycles": modeled.num_cycles,
                "ignored_cycles": ignored.num_cycles,
                "modeled": simulation_accuracy(
                    modeled.signal[:length], measured.signal[:length],
                    spc),
                "ignored": simulation_accuracy(
                    ignored.signal[:length_ignored],
                    measured.signal[:length_ignored], spc),
            }
        return results

    results = run_once(benchmark, experiment)
    miss = results["miss"]
    hit = results["hit"]
    lines = [
        "LD with a cache miss (left) and a cache hit (right), Fig. 6:",
        f"  measured timeline: miss = {miss['measured_cycles']} cycles, "
        f"hit probe = {hit['measured_cycles']} cycles",
        f"  modeling the cache:  miss {miss['modeled']:6.1%}   "
        f"hit {hit['modeled']:6.1%}",
        f"  all-hits assumption: miss {miss['ignored']:6.1%}   "
        f"hit {hit['ignored']:6.1%}",
        f"  (all-hits timeline for the miss probe: "
        f"{miss['ignored_cycles']} vs real {miss['measured_cycles']} "
        f"cycles)",
        "",
        "paper shape: without modeling cache misses the simulation",
        "deviates from the original signal -> " +
        ("reproduced" if miss["ignored"] < miss["modeled"]
         else "NOT reproduced"),
    ]
    record("fig6_cache", "\n".join(lines))
    assert miss["modeled"] > miss["ignored"] + 0.05
    assert miss["ignored_cycles"] < miss["measured_cycles"]
    # the hit probe also contains the initial (line-warming) miss, so the
    # ablation hurts it too — but far less than the all-miss program
    assert hit["modeled"] >= hit["ignored"]
    assert (miss["modeled"] - miss["ignored"]) > \
        (hit["modeled"] - hit["ignored"])
