"""Perf/robustness: supervised campaign survival, resume, and overhead.

The acceptance claims for the supervised campaign runtime
(docs/robustness.md):

1. a 256-item campaign with ~10 % injected faults — an even mix of
   worker crashes (``os._exit``) and hangs (sleep past the per-item
   deadline) — completes with **zero lost non-quarantined items**: every
   faulted item is retried to success;
2. an interrupted-at-50 %-then-resumed run produces **bit-identical**
   result arrays to an uninterrupted one;
3. the checkpoint journal costs **< 5 %** wall time on a fault-free
   campaign.

Emits ``benchmarks/results/BENCH_resume.json`` (schema
``repro-bench/1``).  ``REPRO_BENCH_QUICK=1`` shrinks the campaign to 64
items and writes ``BENCH_resume.quick.json`` instead.
"""

import os
import time

import numpy as np
import pytest

from conftest import bench_quick, run_once, write_bench_report
from repro.parallel import spawn_seed, supervised_map
from repro.profiling import (disable_profiling, enable_profiling,
                             supervision_counts)
from repro.robustness import CheckpointJournal, content_key

QUICK = bench_quick()
ITEMS = 64 if QUICK else 256
WORKERS = 8
ITEM_TIMEOUT = 1.0
MAX_RETRIES = 2
OVERHEAD_CEILING = 0.05

# fault plan: every 20th item (offset 3) crashes its worker on the
# first attempt, every 20th (offset 13) hangs past the deadline — a
# 10% crash+hang mix, deterministic by index
CRASH_STRIDE, CRASH_PHASE = 20, 3
HANG_STRIDE, HANG_PHASE = 20, 13


def _payload(index):
    """The per-item "capture": a deterministic seeded computation sized
    like a real campaign item (~20 ms — a reference capture costs tens
    of milliseconds), so the measured journaling overhead is
    representative rather than dominated by fsync on toy items."""
    rng = spawn_seed(7, index)
    signal = rng.normal(size=65536)
    for _ in range(16):
        signal = np.fft.irfft(np.fft.rfft(signal), len(signal))
    return signal[:128].copy()


def faulty_item(item):
    """Compute the payload, injecting one crash or hang per fault slot."""
    index, faults_dir = item
    if faults_dir:
        if index % CRASH_STRIDE == CRASH_PHASE:
            marker = os.path.join(faults_dir, f"crash_{index}")
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                os._exit(1)
        if index % HANG_STRIDE == HANG_PHASE:
            marker = os.path.join(faults_dir, f"hang_{index}")
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                time.sleep(30)
    return _payload(index)


def _key_for(index, item):
    return content_key("resume-bench", item[0])


def _items(faults_dir=""):
    return [(index, faults_dir) for index in range(ITEMS)]


def _expected_faults():
    crashes = len([i for i in range(ITEMS)
                   if i % CRASH_STRIDE == CRASH_PHASE])
    hangs = len([i for i in range(ITEMS)
                 if i % HANG_STRIDE == HANG_PHASE])
    return crashes, hangs


def _truncate_journal(path, keep_records):
    with open(path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.writelines(lines[:1 + keep_records])


class _TimedJournal(CheckpointJournal):
    """Journal that accounts the wall time of its own appends, so the
    overhead measurement is paired with the campaign it rode in and
    run-to-run CPU noise cancels out."""

    def __init__(self, *args, **kwargs):
        self.record_seconds = 0.0
        super().__init__(*args, **kwargs)

    def record(self, key, index, value):
        start = time.perf_counter()
        super().record(key, index, value)
        self.record_seconds += time.perf_counter() - start


def _journaled_run(journal_path):
    start = time.perf_counter()
    with _TimedJournal(journal_path, resume=False) as journal:
        results, ledger = supervised_map(faulty_item, _items(),
                                         workers=1, journal=journal,
                                         key_for=_key_for)
    assert ledger.complete
    total = time.perf_counter() - start
    return results, total, journal.record_seconds


@pytest.mark.benchmark(group="robustness")
def test_supervised_resume(benchmark, record, tmp_path):
    def experiment():
        profiler = enable_profiling()
        profiler.reset()
        try:
            # -- claim 1: survive a 10% crash+hang fault mix ----------
            faults_dir = str(tmp_path / "faults")
            os.makedirs(faults_dir)
            fault_start = time.perf_counter()
            faulted, ledger = supervised_map(
                faulty_item, _items(faults_dir), workers=WORKERS,
                timeout=ITEM_TIMEOUT, max_item_retries=MAX_RETRIES)
            fault_seconds = time.perf_counter() - fault_start
            crashes, hangs = _expected_faults()
            counts = ledger.counts()
            assert ledger.complete, \
                f"lost items: {ledger.quarantined}"
            assert counts["retried"] == crashes + hangs
            assert counts["ok"] == ITEMS - crashes - hangs
            assert ledger.pool_rebuilds >= hangs

            # -- claim 3: journaling overhead < 5% (fault-free) -------
            # timed inside one run (append seconds vs campaign
            # seconds), so multiplicative CPU noise cancels instead of
            # drowning the ~2% signal in run-to-run jitter
            reference, journal_seconds, record_seconds = _journaled_run(
                str(tmp_path / "overhead.jsonl"))
            overhead = record_seconds / (journal_seconds -
                                         record_seconds)

            # -- claim 2: interrupt at 50%, resume, compare bits ------
            resume_path = str(tmp_path / "resume.jsonl")
            with CheckpointJournal(resume_path, resume=False) as journal:
                supervised_map(faulty_item, _items(), workers=1,
                               journal=journal, key_for=_key_for)
            _truncate_journal(resume_path, keep_records=ITEMS // 2)
            with CheckpointJournal(resume_path) as journal:
                resumed, resume_ledger = supervised_map(
                    faulty_item, _items(), workers=1,
                    journal=journal, key_for=_key_for)
            identical = all(
                np.array_equal(a, b) and a.dtype == b.dtype
                for a, b in zip(reference, resumed))
            assert identical
            assert len(resume_ledger.resumed) == ITEMS // 2
            for a, b in zip(faulted, reference):
                assert np.array_equal(a, b)  # faults never change data
        finally:
            disable_profiling()
        return write_bench_report(
            "resume",
            metadata={
                "benchmark": "supervised_resume",
                "items": ITEMS,
                "workers": WORKERS,
                "item_timeout": ITEM_TIMEOUT,
                "injected_crashes": crashes,
                "injected_hangs": hangs,
                "ledger_counts": counts,
                "pool_rebuilds": ledger.pool_rebuilds,
                "quarantined": ledger.quarantined,
                "fault_campaign_seconds": fault_seconds,
                "journal_campaign_seconds": journal_seconds,
                "journal_record_seconds": record_seconds,
                "checkpoint_overhead": overhead,
                "resumed_items": len(resume_ledger.resumed),
                "resume_bit_identical": identical,
                "supervision": supervision_counts(profiler),
            }, profiler=profiler)

    document = run_once(benchmark, experiment)
    lines = [f"{ITEMS} items, {document['injected_crashes']} crashes + "
             f"{document['injected_hangs']} hangs injected"
             + (" (quick mode)" if QUICK else ""),
             f"fault campaign: {document['fault_campaign_seconds']:6.2f} s"
             f"  ledger {document['ledger_counts']}"
             f"  rebuilds={document['pool_rebuilds']}",
             f"lost items: {len(document['quarantined'])}",
             f"checkpoint overhead: "
             f"{document['checkpoint_overhead']:+6.2%}  "
             f"(ceiling {OVERHEAD_CEILING:.0%})",
             f"resume at 50%: {document['resumed_items']} items "
             f"replayed, bit-identical="
             f"{document['resume_bit_identical']}"]
    record("robustness_resume", "\n".join(lines))
    assert document["quarantined"] == []
    assert document["resume_bit_identical"]
    assert document["checkpoint_overhead"] < OVERHEAD_CEILING
