"""Fig. 11 — finding a hardware bug from the EM reference signal.

The paper's case study: a multiplier that silently uses only the lower
8 bits of each operand.  The measured signal's final multiply cycle is
significantly lower than EMSim's reference, localizing the defect with
zero test infrastructure.
"""

import numpy as np
from conftest import run_once

from repro.hardware import DE0_CV, DeviceInstance, HardwareDevice
from repro.leakage import (buggy_multiplier, calibrated_deficit,
                           multiplier_stress_program, unit_relative_check)
from repro.signal import estimate_cycle_amplitudes

THRESHOLD = 0.05


def test_fig11_buggy_multiplier_detection(bench, record, benchmark):
    program = multiplier_stress_program(num_muls=32)

    def experiment():
        reference = bench.simulator.simulate(program)

        def check(device):
            measurement = device.capture_ideal(program)
            amplitudes = estimate_cycle_amplitudes(
                measurement.signal, bench.model.config.kernel, bench.spc)
            return unit_relative_check(reference.amplitudes, amplitudes,
                                       reference.trace,
                                       em_class="muldiv_final")

        calibration = check(bench.device)
        healthy = check(HardwareDevice(
            instance=DeviceInstance(board=DE0_CV, instance_id=1)))
        buggy = check(HardwareDevice(alu_bug=buggy_multiplier))
        return dict(
            calibration=calibration,
            healthy_deficit=calibrated_deficit(healthy, calibration),
            buggy_deficit=calibrated_deficit(buggy, calibration))

    results = run_once(benchmark, experiment)
    lines = [
        "32 random-operand MULs, multiplier emission vs EMSim reference",
        "(calibrated on a known-good unit):",
        f"  healthy second unit: deficit "
        f"{results['healthy_deficit']:+6.1%}  -> "
        f"{'DEFECTIVE' if results['healthy_deficit'] > THRESHOLD else 'pass'}",
        f"  buggy 8-bit multiplier: deficit "
        f"{results['buggy_deficit']:+6.1%}  -> "
        f"{'DEFECTIVE' if results['buggy_deficit'] > THRESHOLD else 'pass'}",
        "",
        "paper shape: the defective multiplier radiates significantly",
        "less in its result cycle than the simulation reference -> " +
        ("reproduced"
         if results["buggy_deficit"] > THRESHOLD >
         results["healthy_deficit"] else "NOT reproduced"),
    ]
    record("fig11_debugging", "\n".join(lines))

    assert results["healthy_deficit"] < THRESHOLD
    assert results["buggy_deficit"] > THRESHOLD
