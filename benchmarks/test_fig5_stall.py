"""Fig. 5 — modeling pipeline stalls vs ignoring them.

A MUL stalls the pipeline for eight cycles (the paper stretched the MUL
latency for clarity).  Stalled stages are frozen and radiate almost
nothing; a model that keeps predicting full activity during the stall
deviates wildly.
"""

from dataclasses import replace

import numpy as np
from conftest import run_once

from repro.core import EMSim, isolation_probe, probe_instruction_seq
from repro.signal import per_cycle_similarities, simulation_accuracy


def test_fig5_stall_modeling(bench, record, benchmark):
    # the paper: "we intentionally increased the stall cycles in MUL for
    # clarity" — eight execute cycles
    config = replace(bench.device.core_config, mul_latency=8)
    from repro.hardware import HardwareDevice
    device = HardwareDevice(core_config=config)
    probe = isolation_probe("mul", rs1_value=0xDEADBEEF,
                            rs2_value=0x0BADF00D)

    def experiment():
        measured = device.capture_ideal(probe)
        spc = bench.spc
        with_stalls = EMSim(bench.model, core_config=config)
        without = with_stalls.with_switches(model_stalls=False)
        results = {}
        for label, simulator in (("modeled", with_stalls),
                                 ("ignored", without)):
            simulated = simulator.simulate(probe)
            length = min(len(measured.signal), len(simulated.signal))
            results[label] = dict(
                accuracy=simulation_accuracy(simulated.signal[:length],
                                             measured.signal[:length],
                                             spc),
                cycles=per_cycle_similarities(simulated.signal[:length],
                                              measured.signal[:length],
                                              spc),
                amplitudes=simulated.amplitudes)
        # locate the stall cycles
        seq = probe_instruction_seq(probe)
        execute_cycles = measured.trace.cycles_of(seq, "E")
        stall_cycles = [cycle for cycle in execute_cycles
                        if measured.trace.occupancy["E"][cycle].kind ==
                        "stall"]
        results["stall_cycles"] = stall_cycles
        return results

    results = run_once(benchmark, experiment)
    stalls = results["stall_cycles"]
    modeled_stall = float(np.mean(results["modeled"]["cycles"][stalls]))
    ignored_stall = float(np.mean(results["ignored"]["cycles"][stalls]))
    lines = [
        "MUL stalling the pipeline for 8 cycles (paper Fig. 5):",
        f"  stall cycles: {stalls}",
        f"  modeling stalls (Fig. 5 top):    overall "
        f"{results['modeled']['accuracy']:6.1%}, during stall "
        f"{modeled_stall:6.1%}",
        f"  ignoring stalls (Fig. 5 bottom): overall "
        f"{results['ignored']['accuracy']:6.1%}, during stall "
        f"{ignored_stall:6.1%}",
        "",
        "paper shape: not simulating stalls deviates significantly "
        "during the stall -> " +
        ("reproduced" if ignored_stall < modeled_stall else
         "NOT reproduced"),
    ]
    record("fig5_stall", "\n".join(lines))
    assert results["modeled"]["accuracy"] > results["ignored"]["accuracy"]
    assert ignored_stall < modeled_stall - 0.1
