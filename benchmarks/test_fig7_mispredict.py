"""Fig. 7 — modeling branch mispredictions vs assuming perfect fetch.

A mispredicted branch flushes two instructions; the injected bubbles
change the signal for those cycles.  Without modeling mispredictions the
simulated pipeline never flushes, so its timeline and bubble pattern
deviate from the real signal.
"""

import numpy as np
from conftest import run_once

from repro.isa import assemble
from repro.signal import simulation_accuracy

TAKEN_BRANCH = """
    li   t0, 3
    li   t1, 0
loop:
    addi t1, t1, 1
    xori t2, t1, 0x55
    addi t0, t0, -1
    bnez t0, loop      # taken twice: first encounter mispredicts
    nop
    nop
    nop
    nop
    ebreak
"""


def test_fig7_misprediction_modeling(bench, record, benchmark):
    program = assemble(TAKEN_BRANCH, name="mispredict_demo")

    def experiment():
        spc = bench.spc
        measured = bench.device.capture_ideal(program)
        modeled = bench.simulator.simulate(program)
        oracle = bench.simulator.with_switches(model_mispredicts=False) \
            .simulate(program)
        length = min(len(measured.signal), len(modeled.signal))
        length_oracle = min(len(measured.signal), len(oracle.signal))
        return {
            "measured_cycles": measured.num_cycles,
            "measured_flushes": len(measured.trace.flushes),
            "modeled_cycles": modeled.num_cycles,
            "modeled_flushes": len(modeled.trace.flushes),
            "oracle_cycles": oracle.num_cycles,
            "oracle_flushes": len(oracle.trace.flushes),
            "modeled": simulation_accuracy(modeled.signal[:length],
                                           measured.signal[:length], spc),
            "ignored": simulation_accuracy(
                oracle.signal[:length_oracle],
                measured.signal[:length_oracle], spc),
        }

    results = run_once(benchmark, experiment)
    lines = [
        "loop with mispredicted taken branch (paper Fig. 7):",
        f"  real hardware: {results['measured_cycles']} cycles, "
        f"{results['measured_flushes']} flushes",
        f"  modeling mispredictions:  {results['modeled']:6.1%} "
        f"({results['modeled_cycles']} cycles, "
        f"{results['modeled_flushes']} flushes)",
        f"  perfect-fetch assumption: {results['ignored']:6.1%} "
        f"({results['oracle_cycles']} cycles, "
        f"{results['oracle_flushes']} flushes)",
        "",
        "paper shape: the flush bubbles visibly change the signal and",
        "must be modeled -> " +
        ("reproduced" if results["ignored"] < results["modeled"]
         else "NOT reproduced"),
    ]
    record("fig7_mispredict", "\n".join(lines))
    assert results["measured_flushes"] >= 1
    assert results["modeled_flushes"] == results["measured_flushes"]
    assert results["oracle_flushes"] == 0
    assert results["modeled"] > results["ignored"] + 0.05
