"""Fig. 1 — signal reconstruction with rect / exponential / damped-sine.

Paper claim: reconstructing the measured waveform from per-cycle samples
with the damped-sinusoid f(t) = sin(2*pi*t/T0) e^(-theta t) (Eq. 5) fits the
real signal far better than zero-order hold (Eq. 2) or a plain exponential
(Eq. 3).
"""

from conftest import run_once

from repro.signal import (DampedSineKernel, ExpKernel, RectKernel,
                          estimate_cycle_amplitudes, reconstruct,
                          simulation_accuracy)
from repro.workloads import checksum


def test_fig1_kernel_comparison(bench, record, benchmark):
    def experiment():
        measurement = bench.device.capture_ideal(checksum(24))
        spc = bench.spc
        fitted = bench.model.config.kernel
        kernels = {
            "rect (ZOH, Eq. 2)": RectKernel(),
            "exponential (Eq. 3)": ExpKernel(theta=fitted.theta),
            "damped sine (Eq. 5)": DampedSineKernel(t0=fitted.t0,
                                                    theta=fitted.theta),
        }
        scores = {}
        for name, kernel in kernels.items():
            amplitudes = estimate_cycle_amplitudes(measurement.signal,
                                                   kernel, spc)
            resynthesized = reconstruct(amplitudes, kernel, spc)
            scores[name] = simulation_accuracy(resynthesized,
                                               measurement.signal, spc)
        return scores

    scores = run_once(benchmark, experiment)
    lines = ["reconstruction fit to the measured signal "
             "(per-cycle similarity):"]
    for name, score in scores.items():
        lines.append(f"  {name:<22s} {score:6.1%}")
    lines.append("")
    lines.append("paper shape: damped sine best, rect worst  ->  "
                 f"reproduced: {max(scores, key=scores.get)} best")
    record("fig1_kernels", "\n".join(lines))

    assert scores["damped sine (Eq. 5)"] > scores["exponential (Eq. 3)"]
    assert scores["damped sine (Eq. 5)"] > scores["rect (ZOH, Eq. 2)"]
