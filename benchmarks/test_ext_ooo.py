"""§VIII extension — EMSim on an out-of-order core (paper future work).

The paper conjectures: "since the root cause of creating side-channel
signals are bit-flips at the gate-level, we do not expect any fundamental
modeling difference between in-order and OoO designs", with a higher
baseline amplitude per (more complex) stage and different fitted
coefficients.  This experiment trains EMSim on the OoO device and checks
the conjecture.
"""

import numpy as np
from conftest import run_once

from repro.core import EMSim, Trainer, coverage_groups
from repro.hardware import HardwareDevice


def test_ext_ooo_accuracy(bench, record, benchmark):
    program = coverage_groups(group_size=192, seed=59, limit_groups=1)[0]

    def experiment():
        device = HardwareDevice(core_kind="out-of-order")
        trainer = Trainer(device=device, activity_probes_per_class=16,
                          miso_groups=2, miso_group_size=128)
        model = trainer.train()
        simulator = EMSim(model, core_config=device.core_config,
                          core_kind="out-of-order")
        accuracy = bench.accuracy(program, device=device,
                                  simulator=simulator,
                                  max_cycles=50_000)
        # sanity: the OoO device really executes out of order
        trace, _ = device.run(program, max_cycles=50_000)
        in_order_trace = bench.simulator.run_trace(program,
                                                   max_cycles=50_000)
        return dict(accuracy=accuracy,
                    inorder_accuracy=bench.accuracy(program),
                    ooo_cycles=trace.num_cycles,
                    inorder_cycles=in_order_trace.num_cycles,
                    miso=model.miso,
                    inorder_miso=bench.model.miso)

    results = run_once(benchmark, experiment)
    miso = ", ".join(f"{stage}={value:.2f}"
                     for stage, value in sorted(results["miso"].items()))
    inorder_miso = ", ".join(
        f"{stage}={value:.2f}"
        for stage, value in sorted(results["inorder_miso"].items()))
    lines = [
        "EMSim trained and evaluated on the out-of-order core:",
        f"  OoO accuracy:      {results['accuracy']:6.1%} "
        f"({results['ooo_cycles']} cycles)",
        f"  in-order accuracy: {results['inorder_accuracy']:6.1%} "
        f"({results['inorder_cycles']} cycles)",
        f"  OoO fitted M:      {miso}",
        f"  in-order fitted M: {inorder_miso}",
        "",
        "paper shape (§VIII): same MISO methodology carries over, with",
        "different fitted coefficients, and no fundamental modeling",
        "difference -> " +
        ("reproduced" if results["accuracy"] >
         results["inorder_accuracy"] - 0.03 else "NOT reproduced"),
    ]
    record("ext_ooo", "\n".join(lines))

    assert results["accuracy"] > 0.90
    assert results["ooo_cycles"] < results["inorder_cycles"]
