"""Fig. 3 — regression activity factors vs equal-weight flip averaging.

With random operands, the data-dependent amplitude is predicted well by
the linear-regression activity factor (Eq. 8) and poorly by the
all-flips-equal averaging model (Eq. 7) — because "not all the bit-flips
have the similar impact on the amplitude".
"""

import numpy as np
from conftest import run_once

from repro.core import isolation_probe, make_simulator
from repro.signal import simulation_accuracy


def test_fig3_regression_vs_averaging(bench, record, benchmark):
    rng = np.random.default_rng(31)
    probes = [isolation_probe("add",
                              rs1_value=int(rng.integers(0, 1 << 32)),
                              rs2_value=int(rng.integers(0, 1 << 32)))
              for _ in range(10)]
    probes += [isolation_probe("mul",
                               rs1_value=int(rng.integers(0, 1 << 32)),
                               rs2_value=int(rng.integers(0, 1 << 32)))
               for _ in range(10)]

    def experiment():
        averaging = make_simulator(bench.model, "avg-alpha",
                                   core_config=bench.device.core_config)
        scores = {"regression": [], "averaging": []}
        for probe in probes:
            measured = bench.device.capture_ideal(probe)
            for label, simulator in (("regression", bench.simulator),
                                     ("averaging", averaging)):
                simulated = simulator.simulate(probe)
                length = min(len(measured.signal), len(simulated.signal))
                scores[label].append(simulation_accuracy(
                    simulated.signal[:length], measured.signal[:length],
                    bench.spc))
        return {label: float(np.mean(values))
                for label, values in scores.items()}

    scores = run_once(benchmark, experiment)
    lines = [
        "random-operand probes (ADD, MUL), simulated vs measured:",
        f"  LR activity factor (Eq. 8, Fig. 3 top):    "
        f"{scores['regression']:6.1%}",
        f"  flip averaging     (Eq. 7, Fig. 3 bottom): "
        f"{scores['averaging']:6.1%}",
        "",
        "paper shape: LR significantly better than averaging -> " +
        ("reproduced" if scores["regression"] > scores["averaging"]
         else "NOT reproduced"),
    ]
    record("fig3_activity_factor", "\n".join(lines))
    assert scores["regression"] > scores["averaging"]
