"""Fig. 8 + headline result — accuracy across ALL instruction combinations.

The paper's coverage benchmark: all 7^5 = 16807 pipeline combinations of
the representative instructions, randomly grouped into 17 groups of 1024
combinations (~5120 instructions each), plus another 17 groups drawn from
the full ISA.  Headline: "EMSim has about 94.1% accuracy in simulating
side-channel signals across all possible instruction combinations."

Set EMSIM_FULL_FIG8=1 to run all 34 groups; by default a stratified
subset keeps the benchmark quick while covering both group families.
"""

import os

import numpy as np
from conftest import run_once

from repro.core import coverage_groups

FULL = os.environ.get("EMSIM_FULL_FIG8", "0") == "1"
GROUP_SIZE = 1024
LIMIT = None if FULL else 3


def test_fig8_coverage_accuracy(bench, record, benchmark):
    def experiment():
        scores = {}
        for use_full_isa in (False, True):
            groups = coverage_groups(group_size=GROUP_SIZE, seed=7,
                                     use_full_isa=use_full_isa,
                                     limit_groups=LIMIT)
            for group in groups:
                scores[group.name] = bench.accuracy(
                    group, max_cycles=60_000)
        return scores

    scores = run_once(benchmark, experiment)
    values = np.array(list(scores.values()))
    lines = ["accuracy per combination group (simulated vs measured):"]
    for name, value in scores.items():
        lines.append(f"  {name:<16s} {value:6.1%}")
    lines.append("")
    lines.append(f"groups: {len(scores)}"
                 f"{'' if FULL else ' (subset; EMSIM_FULL_FIG8=1 for all 34)'}")
    lines.append(f"average accuracy: {values.mean():6.1%}  "
                 f"(paper: ~94.1% across all combinations)")
    lines.append(f"min/max: {values.min():6.1%} / {values.max():6.1%}")
    record("fig8_accuracy", "\n".join(lines))

    assert values.mean() > 0.90
    assert values.min() > 0.85
